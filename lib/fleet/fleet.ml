(** Crash-tolerant multi-process campaign supervisor.

    The NNSmith pipeline is index-pure — test [i]'s entire behaviour
    derives from [Splitmix.derive ~root ~index:i] — so the fleet shards
    the index space by residue class ([shard w] runs [i mod shards = w]),
    spawns one OS process per shard on the campaign binary's hidden
    [fleet-worker] mode, and reads length-prefixed {!Proto} frames from
    each worker's pipe.

    The supervisor is the only process that writes campaign state (corpus,
    journal, checkpoint): worker outcomes are re-ordered into strict
    global index order through a buffer and applied one at a time, so a
    single [applied] high-water mark captures progress exactly.  The
    periodic {!Checkpoint} records that mark plus the corpus index length;
    {!run}[ ~resume:true] truncates [index.jsonl] back to the checkpoint
    (undoing un-checkpointed appends) and deterministically re-runs
    indices [>= applied] — the resumed campaign's corpus, coverage and
    failure keys are byte-identical to an uninterrupted run's.

    Worker death is a test outcome, not a campaign failure: the death is
    charged to the index the worker was presumed to be running, filed in
    the corpus as a [Crash] with the offending derived seed, and the shard
    restarts past it under bounded exponential backoff.  SIGTERM/SIGINT
    drain workers gracefully and leave a resumable checkpoint. *)

module Cov = Nnsmith_coverage.Coverage
module Tel = Nnsmith_telemetry.Telemetry
module Json = Nnsmith_telemetry.Json
module Journal = Nnsmith_journal.Journal
module Progress = Nnsmith_journal.Progress
module Corpus = Nnsmith_corpus.Corpus
module Splitmix = Nnsmith_parallel.Splitmix
module Systems = Nnsmith_difftest.Systems
module Harness = Nnsmith_difftest.Harness
module Report = Nnsmith_difftest.Report
module Pfuzz = Nnsmith_difftest.Pfuzz
module Faults = Nnsmith_faults.Faults
module Gen = Nnsmith_core.Gen
module Config = Nnsmith_core.Config
module Graph = Nnsmith_ir.Graph
module Solver = Nnsmith_smt.Solver
module Dashboard = Nnsmith_dashboard.Dashboard

type kind = Fuzz | Hunt

let kind_name = function Fuzz -> "fuzz" | Hunt -> "hunt"

let kind_of_name = function
  | "fuzz" -> Ok Fuzz
  | "hunt" -> Ok Hunt
  | k -> Error (Printf.sprintf "unknown campaign kind %S" k)

type config = {
  fc_dir : string;
  fc_kind : kind;
  fc_systems : Systems.t list;
  fc_faults : string list;
  fc_root_seed : int;
  fc_shards : int;
  fc_tests : int;
  fc_max_nodes : int;
  fc_binning : bool;
  fc_exe : string;  (** binary to spawn workers on (usually self) *)
  fc_argv : string list;  (** worker argv marker, e.g. ["fleet-worker"] *)
  fc_heartbeat_timeout_ms : float;
  fc_checkpoint_every : int;  (** applied tests between checkpoints *)
  fc_max_restarts : int;  (** consecutive deaths before abandoning *)
  fc_backoff_base_ms : float;
  fc_backoff_max_ms : float;
  fc_progress : bool;
  fc_dashboard_every_ms : float;  (** [<= 0] disables live regeneration *)
  fc_stop_after_applied : int option;
      (** test hook: simulate a supervisor power cut — SIGKILL the workers
          and return without a final checkpoint once this many tests have
          been applied *)
}

let default_config ~dir ~tests =
  {
    fc_dir = dir;
    fc_kind = Fuzz;
    fc_systems = Systems.all;
    fc_faults = [];
    fc_root_seed = 42;
    fc_shards = Nnsmith_parallel.Pool.default_jobs ();
    fc_tests = tests;
    fc_max_nodes = 10;
    fc_binning = true;
    fc_exe = Sys.executable_name;
    fc_argv = [ "fleet-worker" ];
    fc_heartbeat_timeout_ms = 30_000.;
    fc_checkpoint_every = 25;
    fc_max_restarts = 5;
    fc_backoff_base_ms = 100.;
    fc_backoff_max_ms = 5_000.;
    fc_progress = false;
    fc_dashboard_every_ms = 0.;
    fc_stop_after_applied = None;
  }

type summary = {
  fs_tests : int;  (** total indices applied, all sessions *)
  fs_session_tests : int;  (** applied by this invocation *)
  fs_shards : int;
  fs_verdicts : (string * int) list;
  fs_crashes : (string * int) list;
  fs_failure_keys : string list;
  fs_triggered : (string * int) list;
  fs_ops : (string * (string * int) list) list;
  fs_saved : int;
  fs_dups : int;
  fs_worker_crashes : int;
  fs_restarts : int;
  fs_cov_total : int;
  fs_cov_pass : int;
  fs_elapsed_ms : float;
  fs_complete : bool;
}

(* ------------------------------------------------------------------ *)
(* Cumulative campaign state (restored from the checkpoint on resume)  *)
(* ------------------------------------------------------------------ *)

type cum = {
  mutable c_cov : Cov.snapshot;
  c_verdicts : (string, int) Hashtbl.t;
  c_crashes : (string, int) Hashtbl.t;
  c_keys : (string, unit) Hashtbl.t;
  c_triggered : (string, int) Hashtbl.t;
  c_ops : (string, (string, int) Hashtbl.t) Hashtbl.t;
  mutable c_saved : int;
  mutable c_dups : int;
  mutable c_worker_crashes : int;
  mutable c_restarts : int;
}

let fresh_cum () =
  {
    c_cov = Cov.empty;
    c_verdicts = Hashtbl.create 8;
    c_crashes = Hashtbl.create 8;
    c_keys = Hashtbl.create 8;
    c_triggered = Hashtbl.create 8;
    c_ops = Hashtbl.create 16;
    c_saved = 0;
    c_dups = 0;
    c_worker_crashes = 0;
    c_restarts = 0;
  }

let incr_count tbl k by =
  Hashtbl.replace tbl k (by + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sorted_ops tbl =
  Hashtbl.fold (fun op vs acc -> (op, sorted_counts vs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let cum_of_checkpoint (ck : Checkpoint.t) =
  let c = fresh_cum () in
  c.c_cov <- Cov.of_list ck.ck_coverage;
  List.iter (fun (k, n) -> Hashtbl.replace c.c_verdicts k n) ck.ck_verdicts;
  List.iter (fun (k, n) -> Hashtbl.replace c.c_crashes k n) ck.ck_crashes;
  List.iter (fun k -> Hashtbl.replace c.c_keys k ()) ck.ck_keys;
  List.iter (fun (k, n) -> Hashtbl.replace c.c_triggered k n) ck.ck_triggered;
  List.iter
    (fun (op, vs) ->
      let t = Hashtbl.create 4 in
      List.iter (fun (k, n) -> Hashtbl.replace t k n) vs;
      Hashtbl.replace c.c_ops op t)
    ck.ck_ops;
  c.c_saved <- ck.ck_saved;
  c.c_dups <- ck.ck_dups;
  c.c_worker_crashes <- ck.ck_worker_crashes;
  c.c_restarts <- ck.ck_restarts;
  c

(* ------------------------------------------------------------------ *)
(* Crash filing                                                        *)
(* ------------------------------------------------------------------ *)

(* The synthetic "system" worker deaths are filed against: its
   compile_and_run raises unconditionally, so the reducer's
   "still-reproduces" probe deterministically fails and the crash case is
   saved unreduced — identical bytes on every run and resume. *)
let fleet_system : Systems.t =
  {
    Systems.s_name = "Fleet";
    closed_source = true;
    compile_and_run =
      (fun _ _ _ -> raise (Faults.Compiler_bug "[fleet.worker] worker died"));
  }

(* The graph filed with a worker-death crash: regenerate the model the
   dead worker was (presumed) running, so the bundle reproduces the
   offending input.  Generation itself may be the thing that killed the
   worker, so fall back to a tiny then an empty graph. *)
let crash_graph ~seed ~max_nodes ~binning =
  let gen cfg = try Some (Gen.generate cfg) with _ -> None in
  match gen { Config.default with seed; max_nodes; binning } with
  | Some g -> g
  | None -> (
      match gen { Config.default with seed = 1; max_nodes = 3 } with
      | Some g -> g
      | None -> Graph.empty)

let crash_message ~worker ~cause ~index =
  Printf.sprintf "[fleet.worker] worker %d died (%s) at index %d" worker cause
    index

(* ------------------------------------------------------------------ *)
(* Worker main (child-process side)                                    *)
(* ------------------------------------------------------------------ *)

let worker_main () =
  let fail msg =
    prerr_endline ("fleet-worker: " ^ msg);
    exit 2
  in
  let wc =
    match Sys.getenv_opt Proto.env_var with
    | None -> fail (Proto.env_var ^ " not set")
    | Some payload -> (
        match Proto.worker_config_of_string payload with
        | Ok wc -> wc
        | Error e -> fail ("bad worker config: " ^ e))
  in
  (* Frames own fd 1; anything the pipeline prints goes to stderr so it
     cannot corrupt the stream. *)
  let frames_fd = Unix.dup Unix.stdout in
  Unix.dup2 Unix.stderr Unix.stdout;
  let send frame =
    let s = Proto.encode frame in
    let b = Bytes.unsafe_of_string s in
    let n = Bytes.length b in
    let rec go off =
      if off < n then go (off + Unix.write frames_fd b off (n - off))
    in
    go 0
  in
  let hunt = wc.Proto.wc_kind = "hunt" in
  let systems =
    if hunt then Systems.all
    else
      List.map
        (fun name ->
          match Proto.system_of_name name with
          | Some s -> s
          | None -> fail ("unknown system " ^ name))
        wc.Proto.wc_systems
  in
  (try Faults.set_active wc.Proto.wc_faults
   with Invalid_argument m -> fail m);
  Cov.reset ();
  let aborts = Proto.abort_indices () in
  send (Proto.Hello { worker = wc.Proto.wc_worker; pid = Unix.getpid () });
  let prev = ref Cov.empty in
  let tests_done = ref 0 in
  let last = ref (-1) in
  let i = ref wc.Proto.wc_start_index in
  while !i < wc.Proto.wc_tests do
    if List.mem !i aborts then exit Proto.abort_exit_code;
    let seed = Splitmix.derive ~root:wc.Proto.wc_root_seed ~index:!i in
    let outcome =
      Pfuzz.run_one ~attribute_semantic:hunt ~max_nodes:wc.Proto.wc_max_nodes
        ~binning:wc.Proto.wc_binning ~systems ~seed ()
    in
    let snap = Cov.snapshot () in
    let delta = Cov.diff snap !prev in
    prev := snap;
    incr tests_done;
    last := !i;
    let cs = Solver.cache_stats () in
    send
      (Proto.Outcome
         {
           Proto.fo_index = !i;
           fo_tests = !tests_done;
           fo_outcome = outcome;
           fo_cov_delta = Cov.to_list delta;
           fo_cov_total = Cov.count snap;
           fo_cov_universe = Cov.universe_size ();
           fo_cache_hits = cs.Solver.cs_hits;
           fo_cache_misses = cs.Solver.cs_misses;
         });
    i := !i + wc.Proto.wc_shards
  done;
  send (Proto.Shard_done { tests = !tests_done; last_index = !last });
  exit 0

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

exception Power_cut

type pending =
  | P_outcome of Proto.outcome_frame
  | P_crash of { pc_worker : int; pc_index : int; pc_cause : string }

let index_path dir = Filename.concat dir "index.jsonl"

let index_bytes dir =
  match Unix.stat (index_path dir) with
  | st -> st.Unix.st_size
  | exception Unix.Unix_error _ -> 0

(* Undo corpus appends made after the checkpoint: truncate index.jsonl
   back to the recorded length.  The truncated records are regenerated
   byte-for-byte when the corresponding indices re-run. *)
let truncate_index dir bytes =
  let path = index_path dir in
  let have = index_bytes dir in
  if have < bytes then
    Error
      (Printf.sprintf "%s is %d bytes but the checkpoint recorded %d" path
         have bytes)
  else begin
    if have > bytes then begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.ftruncate fd bytes)
    end;
    Ok ()
  end

let write_text_file path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

(* Tests shard [w] contributed to the applied prefix: |{i < applied :
   i mod shards = w}| — seeds the per-worker heartbeat totals on resume. *)
let applied_in_shard ~applied ~shards w =
  if applied > w then ((applied - 1 - w) / shards) + 1 else 0

let run ?(resume = false) (cfg : config) : (summary, string) result =
  let dir = cfg.fc_dir in
  let ( let* ) = Result.bind in
  let* () =
    if cfg.fc_shards < 1 then Error "fleet: need at least one shard"
    else if cfg.fc_tests < 0 then Error "fleet: negative test budget"
    else if cfg.fc_checkpoint_every < 1 then
      Error "fleet: checkpoint interval must be at least 1"
    else Ok ()
  in
  let* lock = Flock.acquire dir in
  let release_lock = lazy (Flock.release lock) in
  let finish_err e =
    Lazy.force release_lock;
    Error e
  in
  match Checkpoint.load dir with
  | Error e -> finish_err ("fleet: unreadable checkpoint: " ^ e)
  | Ok (Some _) when not resume ->
      finish_err
        (Printf.sprintf
           "fleet: %s already holds a checkpoint; pass --resume to continue \
            it (or start a fresh directory)"
           dir)
  | Ok None when resume ->
      finish_err (Printf.sprintf "fleet: no checkpoint to resume in %s" dir)
  | Ok (Some ck) when resume && ck.Checkpoint.ck_complete ->
      (* Nothing to do; report the completed campaign as-is. *)
      Lazy.force release_lock;
      let cov = Cov.of_list ck.ck_coverage in
      Ok
        {
          fs_tests = ck.ck_applied;
          fs_session_tests = 0;
          fs_shards = ck.ck_shards;
          fs_verdicts = ck.ck_verdicts;
          fs_crashes = ck.ck_crashes;
          fs_failure_keys = ck.ck_keys;
          fs_triggered = ck.ck_triggered;
          fs_ops = ck.ck_ops;
          fs_saved = ck.ck_saved;
          fs_dups = ck.ck_dups;
          fs_worker_crashes = ck.ck_worker_crashes;
          fs_restarts = ck.ck_restarts;
          fs_cov_total = Cov.count cov;
          fs_cov_pass = Cov.count_pass cov;
          fs_elapsed_ms = 0.;
          fs_complete = true;
        }
  | Ok ck_opt -> (
      (* Campaign shape comes from the checkpoint on resume — the resumed
         run must re-derive exactly the same index space. *)
      let restored = if resume then ck_opt else None in
      let shape =
        match restored with
        | None ->
            Ok
              ( cfg.fc_kind,
                cfg.fc_root_seed,
                cfg.fc_shards,
                cfg.fc_tests,
                cfg.fc_max_nodes,
                cfg.fc_binning,
                cfg.fc_systems,
                cfg.fc_faults,
                0 )
        | Some ck ->
            let* kind = kind_of_name ck.Checkpoint.ck_kind in
            let* systems =
              List.fold_left
                (fun acc name ->
                  let* acc = acc in
                  match Proto.system_of_name name with
                  | Some s -> Ok (s :: acc)
                  | None ->
                      Error
                        ("fleet: checkpoint names unknown system " ^ name))
                (Ok []) ck.ck_systems
            in
            Ok
              ( kind,
                ck.ck_root_seed,
                ck.ck_shards,
                ck.ck_tests,
                ck.ck_max_nodes,
                ck.ck_binning,
                List.rev systems,
                ck.ck_faults,
                ck.ck_applied )
      in
      match shape with
      | Error e -> finish_err e
      | Ok
          ( kind,
            root_seed,
            shards_n,
            tests,
            max_nodes,
            binning,
            systems,
            faults,
            applied0 ) -> (
          let undo =
            match restored with
            | None -> Ok ()
            | Some ck ->
                (* Heal the kill artefacts before reopening for append:
                   drop a torn journal line, undo un-checkpointed corpus
                   appends. *)
                let dropped = Journal.repair_tail (Journal.in_dir dir) in
                if dropped > 0 then Tel.incr "fleet/journal_repairs";
                truncate_index dir ck.ck_index_bytes
          in
          match undo with
          | Error e -> finish_err e
          | Ok () ->
              (try Faults.set_active faults
               with Invalid_argument _ -> Faults.set_active []);
              Cov.reset ();
              let progress =
                if cfg.fc_progress then Some (Progress.create ()) else None
              in
              let observer = Option.map (fun p -> Progress.observe p) progress in
              let journal =
                Journal.create ?observer ~path:(Journal.in_dir dir) ()
              in
              let corpus = Corpus.open_ ~journal dir in
              let cum =
                match restored with
                | None -> fresh_cum ()
                | Some ck -> cum_of_checkpoint ck
              in
              let applied = ref applied0 in
              let last_ck = ref applied0 in
              let buf : (int, pending) Hashtbl.t = Hashtbl.create 64 in
              let start_ms = Tel.now_ms () in
              (match restored with
              | None ->
                  Journal.emit journal
                    (Journal.Start
                       {
                         s_at_ms = start_ms;
                         s_kind = "fleet-" ^ kind_name kind;
                         s_systems =
                           List.map (fun s -> s.Systems.s_name) systems;
                         s_generator = "NNSmith";
                         s_root_seed = root_seed;
                         s_jobs = shards_n;
                         s_budget = Journal.B_tests tests;
                       })
              | Some _ ->
                  Tel.incr "fleet/resumes";
                  Journal.emit journal
                    (Journal.Resume
                       {
                         rs_at_ms = start_ms;
                         rs_applied = applied0;
                         rs_tests = tests;
                         rs_shards = shards_n;
                       }));
              let shards =
                Array.init shards_n (fun w ->
                    let next =
                      Checkpoint.next_index_for ~applied:applied0
                        ~shards:shards_n w
                    in
                    let sh = Supervise.make_shard ~id:w ~next in
                    sh.Supervise.sh_tests <-
                      applied_in_shard ~applied:applied0 ~shards:shards_n w;
                    if next >= tests then sh.Supervise.sh_state <- Supervise.Done;
                    sh)
              in
              let worker_config (sh : Supervise.shard) =
                {
                  Proto.wc_kind = kind_name kind;
                  wc_worker = sh.Supervise.sh_id;
                  wc_shards = shards_n;
                  wc_start_index = sh.Supervise.sh_next;
                  wc_tests = tests;
                  wc_root_seed = root_seed;
                  wc_max_nodes = max_nodes;
                  wc_binning = binning;
                  wc_systems = List.map (fun s -> s.Systems.s_name) systems;
                  wc_faults = faults;
                }
              in
              let stop = ref false in
              let prev_int =
                Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
              in
              let prev_term =
                Sys.signal Sys.sigterm
                  (Sys.Signal_handle (fun _ -> stop := true))
              in
              let draining = ref false in
              let drain_deadline = ref infinity in
              let save_checkpoint ~complete =
                (* Fold in the supervisor-domain hits (reduce probes) so a
                   resume reproduces only the un-checkpointed window. *)
                cum.c_cov <- Cov.union cum.c_cov (Cov.snapshot ());
                Checkpoint.save dir
                  {
                    Checkpoint.ck_version = Checkpoint.version;
                    ck_kind = kind_name kind;
                    ck_root_seed = root_seed;
                    ck_shards = shards_n;
                    ck_tests = tests;
                    ck_max_nodes = max_nodes;
                    ck_binning = binning;
                    ck_systems = List.map (fun s -> s.Systems.s_name) systems;
                    ck_faults = faults;
                    ck_applied = !applied;
                    ck_shard_next =
                      Checkpoint.shard_next ~applied:!applied ~shards:shards_n;
                    ck_index_bytes = index_bytes dir;
                    ck_coverage = Cov.to_list cum.c_cov;
                    ck_verdicts = sorted_counts cum.c_verdicts;
                    ck_crashes = sorted_counts cum.c_crashes;
                    ck_keys =
                      List.sort compare
                        (Hashtbl.fold (fun k () acc -> k :: acc) cum.c_keys []);
                    ck_triggered = sorted_counts cum.c_triggered;
                    ck_ops = sorted_ops cum.c_ops;
                    ck_saved = cum.c_saved;
                    ck_dups = cum.c_dups;
                    ck_worker_crashes = cum.c_worker_crashes;
                    ck_restarts = cum.c_restarts;
                    ck_complete = complete;
                    ck_at_ms = Tel.now_ms ();
                  };
                last_ck := !applied
              in
              let apply_outcome (fr : Proto.outcome_frame) =
                let o = fr.Proto.fo_outcome in
                List.iter
                  (fun (k, n) -> incr_count cum.c_verdicts k n)
                  o.Pfuzz.o_verdicts;
                List.iter
                  (fun (k, n) -> incr_count cum.c_crashes k n)
                  o.Pfuzz.o_crashes;
                List.iter (fun k -> Hashtbl.replace cum.c_keys k ()) o.Pfuzz.o_keys;
                List.iter
                  (fun (k, n) -> incr_count cum.c_triggered k n)
                  o.Pfuzz.o_triggered;
                List.iter
                  (fun (op, vs) ->
                    let t =
                      match Hashtbl.find_opt cum.c_ops op with
                      | Some t -> t
                      | None ->
                          let t = Hashtbl.create 4 in
                          Hashtbl.replace cum.c_ops op t;
                          t
                    in
                    List.iter (fun (k, n) -> incr_count t k n) vs)
                  o.Pfuzz.o_ops;
                cum.c_cov <- Cov.union cum.c_cov (Cov.of_list fr.Proto.fo_cov_delta);
                List.iter
                  (fun (f : Pfuzz.failure) ->
                    match
                      Report.save_failure corpus ~system:f.Pfuzz.f_system
                        ~generator:f.Pfuzz.f_generator ~seed:f.Pfuzz.f_seed
                        ~export_bugs:f.Pfuzz.f_export_bugs f.Pfuzz.f_graph
                        f.Pfuzz.f_binding f.Pfuzz.f_verdict
                    with
                    | `Saved _ -> cum.c_saved <- cum.c_saved + 1
                    | `Duplicate _ -> cum.c_dups <- cum.c_dups + 1
                    | `Not_failure -> ())
                  o.Pfuzz.o_failures
              in
              let apply_crash ~worker ~index ~cause =
                cum.c_worker_crashes <- cum.c_worker_crashes + 1;
                incr_count cum.c_verdicts "crash" 1;
                let msg = crash_message ~worker ~cause ~index in
                let key = Harness.dedup_key msg in
                incr_count cum.c_crashes key 1;
                Hashtbl.replace cum.c_keys key ();
                let seed = Splitmix.derive ~root:root_seed ~index in
                let graph = crash_graph ~seed ~max_nodes ~binning in
                match
                  Report.save_failure corpus ~system:fleet_system
                    ~generator:"NNSmith" ~seed graph [] (Harness.Crash msg)
                with
                | `Saved _ -> cum.c_saved <- cum.c_saved + 1
                | `Duplicate _ -> cum.c_dups <- cum.c_dups + 1
                | `Not_failure -> ()
              in
              let rec drain_apply () =
                match Hashtbl.find_opt buf !applied with
                | None -> ()
                | Some p ->
                    Hashtbl.remove buf !applied;
                    (match p with
                    | P_outcome fr -> apply_outcome fr
                    | P_crash { pc_worker; pc_index; pc_cause } ->
                        apply_crash ~worker:pc_worker ~index:pc_index
                          ~cause:pc_cause);
                    incr applied;
                    (match cfg.fc_stop_after_applied with
                    | Some k when !applied >= k -> raise Power_cut
                    | _ -> ());
                    if !applied - !last_ck >= cfg.fc_checkpoint_every then
                      save_checkpoint ~complete:false;
                    drain_apply ()
              in
              let handle_crash (sh : Supervise.shard) (p : Supervise.proc)
                  cause =
                let index = p.Supervise.p_next_index in
                if index >= tests then begin
                  (* The worker had already finished its range; the death
                     happened after the last test (e.g. killed between the
                     final outcome and Shard_done). *)
                  sh.Supervise.sh_state <- Supervise.Done;
                  Journal.emit journal
                    (Journal.Shard_done
                       {
                         sd_at_ms = Tel.now_ms ();
                         sd_worker = sh.Supervise.sh_id;
                         sd_tests = sh.Supervise.sh_tests;
                         sd_last_index = index - shards_n;
                       })
                end
                else begin
                  sh.Supervise.sh_restarts <- sh.Supervise.sh_restarts + 1;
                  sh.Supervise.sh_consec_deaths <-
                    sh.Supervise.sh_consec_deaths + 1;
                  cum.c_restarts <- cum.c_restarts + 1;
                  Tel.incr "fleet/worker_crashes";
                  Journal.emit journal
                    (Journal.Worker_crash
                       {
                         wc_at_ms = Tel.now_ms ();
                         wc_worker = sh.Supervise.sh_id;
                         wc_index = index;
                         wc_seed = Splitmix.derive ~root:root_seed ~index;
                         wc_cause = cause;
                         wc_restarts = sh.Supervise.sh_restarts;
                       });
                  if not (Hashtbl.mem buf index) && index >= !applied then
                    Hashtbl.replace buf index
                      (P_crash
                         {
                           pc_worker = sh.Supervise.sh_id;
                           pc_index = index;
                           pc_cause = cause;
                         });
                  sh.Supervise.sh_next <- index + shards_n;
                  if sh.Supervise.sh_consec_deaths > cfg.fc_max_restarts then
                    sh.Supervise.sh_state <- Supervise.Abandoned
                  else if sh.Supervise.sh_next >= tests then
                    sh.Supervise.sh_state <- Supervise.Done
                  else
                    sh.Supervise.sh_state <-
                      Supervise.Idle
                        (Tel.now_ms ()
                        +. Supervise.backoff_ms ~base_ms:cfg.fc_backoff_base_ms
                             ~max_ms:cfg.fc_backoff_max_ms
                             ~consec_deaths:sh.Supervise.sh_consec_deaths)
                end
              in
              let on_eof (sh : Supervise.shard) (p : Supervise.proc) =
                let cause = Supervise.reap p in
                if p.Supervise.p_done then begin
                  sh.Supervise.sh_state <- Supervise.Done;
                  sh.Supervise.sh_consec_deaths <- 0;
                  Journal.emit journal
                    (Journal.Shard_done
                       {
                         sd_at_ms = Tel.now_ms ();
                         sd_worker = sh.Supervise.sh_id;
                         sd_tests = sh.Supervise.sh_tests;
                         sd_last_index = p.Supervise.p_done_last_index;
                       })
                end
                else if !stop then sh.Supervise.sh_state <- Supervise.Done
                else handle_crash sh p cause
              in
              let maybe_heartbeat (sh : Supervise.shard)
                  (fr : Proto.outcome_frame) =
                let now = Tel.now_ms () in
                if now >= sh.Supervise.sh_next_hb_ms then begin
                  sh.Supervise.sh_next_hb_ms <- now +. 250.;
                  sh.Supervise.sh_seq <- sh.Supervise.sh_seq + 1;
                  Journal.emit journal
                    (Journal.Heartbeat
                       {
                         h_worker = sh.Supervise.sh_id;
                         h_seq = sh.Supervise.sh_seq;
                         h_at_ms = now;
                         h_tests = sh.Supervise.sh_tests;
                         h_verdicts = sorted_counts sh.Supervise.sh_verdicts;
                         h_cov_total = Cov.count cum.c_cov;
                         h_cov_pass = Cov.count_pass cum.c_cov;
                         h_cov_universe = fr.Proto.fo_cov_universe;
                         h_cache_hits = fr.Proto.fo_cache_hits;
                         h_cache_misses = fr.Proto.fo_cache_misses;
                       })
                end
              in
              let on_frame (sh : Supervise.shard) (p : Supervise.proc) =
                function
                | Proto.Hello _ -> ()
                | Proto.Outcome fr ->
                    p.Supervise.p_next_index <-
                      fr.Proto.fo_index + shards_n;
                    p.Supervise.p_tests <- fr.Proto.fo_tests;
                    sh.Supervise.sh_consec_deaths <- 0;
                    sh.Supervise.sh_tests <- sh.Supervise.sh_tests + 1;
                    List.iter
                      (fun (k, n) -> incr_count sh.Supervise.sh_verdicts k n)
                      fr.Proto.fo_outcome.Pfuzz.o_verdicts;
                    if
                      fr.Proto.fo_index >= !applied
                      && not (Hashtbl.mem buf fr.Proto.fo_index)
                    then Hashtbl.replace buf fr.Proto.fo_index (P_outcome fr);
                    maybe_heartbeat sh fr
                | Proto.Shard_done { tests = done_tests; last_index } ->
                    p.Supervise.p_done <- true;
                    p.Supervise.p_done_tests <- done_tests;
                    p.Supervise.p_done_last_index <- last_index
              in
              let read_buf = Bytes.create 65536 in
              let read_proc (sh : Supervise.shard) (p : Supervise.proc) =
                match Unix.read p.Supervise.p_fd read_buf 0 65536 with
                | 0 -> on_eof sh p
                | n ->
                    p.Supervise.p_last_frame_ms <- Tel.now_ms ();
                    Proto.feed p.Supervise.p_decoder read_buf ~len:n;
                    let rec pull () =
                      match Proto.next p.Supervise.p_decoder with
                      | Ok None -> ()
                      | Ok (Some frame) ->
                          on_frame sh p frame;
                          (* a frame may flip state (Shard_done) but never
                             removes the proc, so keep pulling *)
                          pull ()
                      | Error e ->
                          Supervise.kill p;
                          let _ = Supervise.reap p in
                          handle_crash sh p ("protocol error: " ^ e)
                    in
                    pull ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | exception Unix.Unix_error _ -> on_eof sh p
              in
              let next_dash = ref 0. in
              let regen_dashboard () =
                match
                  Dashboard.of_dir
                    ~refresh_secs:
                      (max 1
                         (int_of_float (cfg.fc_dashboard_every_ms /. 1000.)))
                    dir
                with
                | html ->
                    write_text_file (Filename.concat dir "dashboard.html") html
                | exception _ -> ()
              in
              let all_settled () =
                Array.for_all
                  (fun (sh : Supervise.shard) ->
                    match sh.Supervise.sh_state with
                    | Supervise.Done | Supervise.Abandoned -> true
                    | _ -> false)
                  shards
              in
              let spawn_due now =
                Array.iter
                  (fun (sh : Supervise.shard) ->
                    match sh.Supervise.sh_state with
                    | Supervise.Idle due when now >= due && not !stop ->
                        if sh.Supervise.sh_next >= tests then
                          sh.Supervise.sh_state <- Supervise.Done
                        else begin
                          match
                            Supervise.spawn ~exe:cfg.fc_exe ~argv:cfg.fc_argv
                              ~config:(worker_config sh)
                              ~start_index:sh.Supervise.sh_next
                          with
                          | p -> sh.Supervise.sh_state <- Supervise.Running p
                          | exception Unix.Unix_error (e, _, _) ->
                              sh.Supervise.sh_consec_deaths <-
                                sh.Supervise.sh_consec_deaths + 1;
                              if
                                sh.Supervise.sh_consec_deaths
                                > cfg.fc_max_restarts
                              then
                                sh.Supervise.sh_state <- Supervise.Abandoned
                              else
                                sh.Supervise.sh_state <-
                                  Supervise.Idle
                                    (now
                                    +. Supervise.backoff_ms
                                         ~base_ms:cfg.fc_backoff_base_ms
                                         ~max_ms:cfg.fc_backoff_max_ms
                                         ~consec_deaths:
                                           sh.Supervise.sh_consec_deaths);
                              prerr_endline
                                ("fleet: spawn failed: "
                                ^ Unix.error_message e)
                        end
                    | _ -> ())
                  shards
              in
              let check_heartbeats now =
                Array.iter
                  (fun (sh : Supervise.shard) ->
                    match sh.Supervise.sh_state with
                    | Supervise.Running p
                      when now -. p.Supervise.p_last_frame_ms
                           > cfg.fc_heartbeat_timeout_ms ->
                        Supervise.kill p;
                        let _ = Supervise.reap p in
                        handle_crash sh p "heartbeat timeout"
                    | _ -> ())
                  shards
              in
              let kill_all () =
                List.iter
                  (fun p ->
                    Supervise.kill p;
                    ignore (Supervise.reap p))
                  (Supervise.running_procs shards);
                Array.iter
                  (fun (sh : Supervise.shard) ->
                    match sh.Supervise.sh_state with
                    | Supervise.Running _ ->
                        sh.Supervise.sh_state <- Supervise.Done
                    | _ -> ())
                  shards
              in
              let rec loop () =
                if !stop && not !draining then begin
                  draining := true;
                  drain_deadline := Tel.now_ms () +. 5_000.;
                  List.iter Supervise.term (Supervise.running_procs shards)
                end;
                if !stop then
                  (* a shard waiting out its restart backoff has no process
                     to drain — settle it directly *)
                  Array.iter
                    (fun (sh : Supervise.shard) ->
                      match sh.Supervise.sh_state with
                      | Supervise.Idle _ ->
                          sh.Supervise.sh_state <- Supervise.Done
                      | _ -> ())
                    shards;
                if !draining && Tel.now_ms () > !drain_deadline then kill_all ();
                if not (all_settled ()) then begin
                  let now = Tel.now_ms () in
                  spawn_due now;
                  check_heartbeats now;
                  let procs =
                    Array.to_list shards
                    |> List.filter_map (fun (sh : Supervise.shard) ->
                           match sh.Supervise.sh_state with
                           | Supervise.Running p -> Some (sh, p)
                           | _ -> None)
                  in
                  (match procs with
                  | [] -> Unix.sleepf 0.02
                  | _ -> (
                      let fds = List.map (fun (_, p) -> p.Supervise.p_fd) procs in
                      match Unix.select fds [] [] 0.1 with
                      | ready, _, _ ->
                          List.iter
                            (fun (sh, p) ->
                              if List.mem p.Supervise.p_fd ready then
                                read_proc sh p)
                            procs
                      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
                  drain_apply ();
                  if
                    cfg.fc_dashboard_every_ms > 0.
                    && Tel.now_ms () >= !next_dash
                  then begin
                    next_dash := Tel.now_ms () +. cfg.fc_dashboard_every_ms;
                    regen_dashboard ()
                  end;
                  loop ()
                end
              in
              let finish_session () =
                Option.iter Progress.finish progress;
                Journal.close journal;
                Sys.set_signal Sys.sigint prev_int;
                Sys.set_signal Sys.sigterm prev_term;
                Lazy.force release_lock
              in
              let summary ~complete =
                {
                  fs_tests = !applied;
                  fs_session_tests = !applied - applied0;
                  fs_shards = shards_n;
                  fs_verdicts = sorted_counts cum.c_verdicts;
                  fs_crashes = sorted_counts cum.c_crashes;
                  fs_failure_keys =
                    List.sort compare
                      (Hashtbl.fold (fun k () acc -> k :: acc) cum.c_keys []);
                  fs_triggered = sorted_counts cum.c_triggered;
                  fs_ops = sorted_ops cum.c_ops;
                  fs_saved = cum.c_saved;
                  fs_dups = cum.c_dups;
                  fs_worker_crashes = cum.c_worker_crashes;
                  fs_restarts = cum.c_restarts;
                  fs_cov_total = Cov.count cum.c_cov;
                  fs_cov_pass = Cov.count_pass cum.c_cov;
                  fs_elapsed_ms = Tel.now_ms () -. start_ms;
                  fs_complete = complete;
                }
              in
              match loop () with
              | () ->
                  let abandoned =
                    Array.to_list shards
                    |> List.find_opt (fun (sh : Supervise.shard) ->
                           sh.Supervise.sh_state = Supervise.Abandoned)
                  in
                  let stopped = !stop in
                  if stopped || abandoned <> None then begin
                    (try drain_apply () with Power_cut -> ());
                    save_checkpoint ~complete:false;
                    let s = summary ~complete:false in
                    finish_session ();
                    match abandoned with
                    | Some sh ->
                        Error
                          (Printf.sprintf
                             "fleet: shard %d abandoned after %d consecutive \
                              worker deaths (checkpoint saved; --resume to \
                              retry)"
                             sh.Supervise.sh_id (cfg.fc_max_restarts + 1))
                    | None -> Ok s
                  end
                  else begin
                    (* Normal completion: every index applied exactly once. *)
                    assert (!applied = tests && Hashtbl.length buf = 0);
                    let now = Tel.now_ms () in
                    Journal.emit journal
                      (Journal.Op_stats
                         { o_at_ms = now; o_ops = sorted_ops cum.c_ops });
                    cum.c_cov <- Cov.union cum.c_cov (Cov.snapshot ());
                    Journal.emit journal
                      (Journal.Coverage
                         {
                           c_at_ms = now;
                           c_tests = tests;
                           c_total = Cov.count cum.c_cov;
                           c_pass = Cov.count_pass cum.c_cov;
                         });
                    let elapsed = Float.max 1e-6 (now -. start_ms) in
                    Journal.emit journal
                      (Journal.Summary
                         {
                           f_at_ms = now;
                           f_tests = tests;
                           f_tests_per_sec =
                             float_of_int (tests - applied0)
                             /. (elapsed /. 1000.);
                           f_verdicts = sorted_counts cum.c_verdicts;
                           f_failures = Hashtbl.length cum.c_keys;
                           f_saved = cum.c_saved;
                           f_dups = cum.c_dups;
                           f_cov_total = Cov.count cum.c_cov;
                           f_cov_pass = Cov.count_pass cum.c_cov;
                           f_dropped = 0;
                         });
                    save_checkpoint ~complete:true;
                    (* The canonical coverage artefact the CI identity gate
                       compares across resumed vs. uninterrupted runs. *)
                    write_text_file
                      (Filename.concat dir "coverage.json")
                      (Json.to_string
                         (Json.Obj
                            [
                              ("total", Json.Num (float_of_int (Cov.count cum.c_cov)));
                              ( "pass",
                                Json.Num
                                  (float_of_int (Cov.count_pass cum.c_cov)) );
                              ( "sites",
                                Json.Obj
                                  (List.map
                                     (fun (s, p) -> (s, Json.Bool p))
                                     (Cov.to_list cum.c_cov)) );
                            ])
                      ^ "\n");
                    if cfg.fc_dashboard_every_ms > 0. then regen_dashboard ();
                    let s = summary ~complete:true in
                    finish_session ();
                    Ok s
                  end
              | exception Power_cut ->
                  (* Simulated supervisor power cut: no checkpoint, no
                     journal finale — just dead workers and whatever made
                     it to disk, exactly like kill -9. *)
                  List.iter
                    (fun p ->
                      Supervise.kill p;
                      ignore (Supervise.reap p))
                    (Supervise.running_procs shards);
                  let s = summary ~complete:false in
                  (* Closing the journal writes nothing (each event was
                     flushed as a complete line), so this is still an
                     honest kill -9 simulation — it just avoids leaking a
                     descriptor per simulated cut in the property tests. *)
                  Journal.close journal;
                  Option.iter Progress.finish progress;
                  Sys.set_signal Sys.sigint prev_int;
                  Sys.set_signal Sys.sigterm prev_term;
                  Lazy.force release_lock;
                  Ok s
              | exception e ->
                  List.iter
                    (fun p ->
                      Supervise.kill p;
                      ignore (Supervise.reap p))
                    (Supervise.running_procs shards);
                  (try save_checkpoint ~complete:false with _ -> ());
                  finish_session ();
                  Error ("fleet: " ^ Printexc.to_string e)))
