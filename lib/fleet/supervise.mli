(** Worker-process plumbing for the fleet supervisor: spawn/signal/reap
    and per-shard bookkeeping (restart counters, bounded exponential
    backoff, heartbeat clocks).  Policy lives in {!Fleet}; this module
    only manages processes. *)

type proc = {
  p_worker : int;  (** shard id *)
  p_pid : int;
  p_fd : Unix.file_descr;  (** read end of the worker's frame pipe *)
  p_decoder : Proto.decoder;
  mutable p_last_frame_ms : float;  (** heartbeat clock: any frame counts *)
  mutable p_next_index : int;
      (** the global index the worker is presumed to be running; a death
          is charged to this index *)
  mutable p_tests : int;
  mutable p_done : bool;  (** a [Shard_done] frame arrived *)
  mutable p_done_tests : int;
  mutable p_done_last_index : int;
}

type shard_state =
  | Running of proc
  | Idle of float  (** restart due at this [Telemetry.now_ms] clock value *)
  | Done
  | Abandoned  (** restart budget exhausted; campaign fails *)

type shard = {
  sh_id : int;
  mutable sh_next : int;  (** next global index to (re)start from *)
  mutable sh_state : shard_state;
  mutable sh_restarts : int;  (** respawns beyond the initial spawn *)
  mutable sh_consec_deaths : int;  (** deaths since the last completed test *)
  mutable sh_tests : int;  (** outcomes received for this shard *)
  mutable sh_seq : int;  (** journal heartbeat sequence *)
  mutable sh_next_hb_ms : float;
  sh_verdicts : (string, int) Hashtbl.t;  (** cumulative, for heartbeats *)
}

val make_shard : id:int -> next:int -> shard
(** Fresh shard, immediately due for its first spawn ([Idle -inf]). *)

val backoff_ms : base_ms:float -> max_ms:float -> consec_deaths:int -> float
(** [base * 2^(deaths-1)] capped at [max] — the restart delay after the
    [deaths]-th consecutive death without a completed test. *)

val spawn :
  exe:string ->
  argv:string list ->
  config:Proto.worker_config ->
  start_index:int ->
  proc
(** Spawn one worker process: [exe argv...] with the config (start index
    patched in) appended to the environment under {!Proto.env_var};
    /dev/null stdin, a fresh pipe as stdout (frames), inherited stderr.
    May raise [Unix.Unix_error] if the spawn itself fails. *)

val term : proc -> unit
(** SIGTERM, ignoring ESRCH. *)

val kill : proc -> unit
(** SIGKILL, ignoring ESRCH. *)

val reap : proc -> string
(** Close the pipe, [waitpid], and describe the death — ["exit N"] /
    ["signal N"].  Call after EOF or after {!kill}. *)

val running_procs : shard array -> proc list
