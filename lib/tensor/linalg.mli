(** Linear-algebra kernels: batched matmul, 2-D convolution, 2-D pooling.
    All operate on float tensors in NCHW layout. *)

val matmul : Nd.t -> Nd.t -> Nd.t
(** Numpy semantics: rank-1 operands are promoted (prepended/appended a unit
    dim that is squeezed from the result); leading batch dims broadcast.
    Raises [Invalid_argument] on contraction-size mismatch. *)

val matmul_into : dst:Nd.t -> Nd.t -> Nd.t -> unit
(** Destination-passing matmul core: both operands must already be rank >= 2
    and [dst] must have the broadcast result shape and the left operand's
    dtype.  [matmul] delegates here, so both entry points compute identical
    bits. *)

val conv2d :
  ?bias:Nd.t ->
  stride:int * int ->
  padding:int * int ->
  dilation:int * int ->
  Nd.t ->
  Nd.t ->
  Nd.t
(** [conv2d ~stride ~padding ~dilation input weight] with input
    [n,c,h,w] and weight [f,c,kh,kw]; output [n,f,oh,ow] where
    [oh = (h + 2*ph - dh*(kh-1) - 1) / sh + 1]. *)

val conv2d_dims :
  stride:int * int ->
  padding:int * int ->
  dilation:int * int ->
  Nd.t ->
  Nd.t ->
  int * int * int * int * int * int * int * int * int
(** [(n, c, h, w, f, kh, kw, oh, ow)] after the full validation [conv2d]
    performs (raising the same errors) — lets a plan compiler check the
    output geometry before allocating a destination. *)

val conv2d_into :
  ?bias:Nd.t ->
  stride:int * int ->
  padding:int * int ->
  dilation:int * int ->
  dst:Nd.t ->
  Nd.t ->
  Nd.t ->
  unit
(** Destination-passing {!conv2d}; [dst] must be the [n,f,oh,ow] output
    tensor with the input's dtype. *)

type pool_kind = Max_pool | Avg_pool

val pool2d :
  kind:pool_kind ->
  kernel:int * int ->
  stride:int * int ->
  padding:int * int ->
  Nd.t ->
  Nd.t
(** 2-D pooling over NCHW input.  [Avg_pool] excludes padding from the
    divisor (ONNX [count_include_pad = 0]); [Max_pool] ignores padded
    cells. *)

val pool2d_dims :
  kernel:int * int ->
  stride:int * int ->
  padding:int * int ->
  Nd.t ->
  int * int * int * int * int * int
(** [(n, c, h, w, oh, ow)] after [pool2d]'s validation. *)

val pool2d_into :
  kind:pool_kind ->
  kernel:int * int ->
  stride:int * int ->
  padding:int * int ->
  dst:Nd.t ->
  Nd.t ->
  unit
(** Destination-passing {!pool2d}; [dst] must be the [n,c,oh,ow] output
    tensor with the input's dtype. *)
