type t = int array

let scalar : t = [||]
let rank = Array.length
let numel s = Array.fold_left ( * ) 1 s
let equal (a : t) b = a = b

let compute_strides s =
  let n = rank s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

(* The evaluation kernels call [strides] once per element (ravel/unravel in
   broadcasting, reduction and layout loops), always over the same handful
   of shapes, so the result is memoized.  The cache is domain-local (no
   synchronisation with concurrent fuzzing workers) and bounded; both the
   key and the cached value are treated as immutable — callers only ever
   read stride arrays. *)
let cache : (t, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let cache_cap = 4096

let strides s =
  if rank s <= 1 then compute_strides s
  else
    let tbl = Domain.DLS.get cache in
    match Hashtbl.find_opt tbl s with
    | Some st -> st
    | None ->
        let st = compute_strides s in
        if Hashtbl.length tbl >= cache_cap then Hashtbl.reset tbl;
        Hashtbl.add tbl (Array.copy s) st;
        st

let ravel s idx =
  let st = strides s in
  let off = ref 0 in
  for i = 0 to rank s - 1 do
    off := !off + (idx.(i) * st.(i))
  done;
  !off

let unravel s off =
  let st = strides s in
  let idx = Array.make (rank s) 0 in
  let rest = ref off in
  for i = 0 to rank s - 1 do
    idx.(i) <- !rest / st.(i);
    rest := !rest mod st.(i)
  done;
  idx

let broadcast a b =
  let ra = rank a and rb = rank b in
  let r = max ra rb in
  let out = Array.make r 1 in
  let ok = ref true in
  for i = 0 to r - 1 do
    let da = if i < r - ra then 1 else a.(i - (r - ra))
    and db = if i < r - rb then 1 else b.(i - (r - rb)) in
    if da = db || da = 1 || db = 1 then out.(i) <- max da db
    else ok := false
  done;
  if !ok then Some out else None

let broadcast_many = function
  | [] -> None
  | s :: rest ->
      List.fold_left
        (fun acc sh ->
          match acc with None -> None | Some a -> broadcast a sh)
        (Some s) rest

let can_broadcast_to ~src ~dst =
  match broadcast src dst with Some b -> equal b dst | None -> false

let validate s = Array.for_all (fun d -> d >= 1) s

let pp ppf s =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "x") int) s

let to_string s = Fmt.str "%a" pp s
let of_list = Array.of_list
let to_list = Array.to_list
