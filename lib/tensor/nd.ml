(* Float storage is a Bigarray: unboxed 64-bit elements outside the OCaml
   heap, so tensor payloads are invisible to the GC (no scanning, no minor-heap
   churn from kernel temporaries).  Both F32 and F64 tensors store float64
   elements — F32 values are rounded through [Dtype.round_f32] at every write
   site, exactly as the boxed representation did, so all bit-identity
   properties are preserved.  Int/bool tensors stay boxed: they are small,
   rare, and never on the kernel hot path. *)
type farray = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type data = F of farray | I of int array | B of bool array
type t = { dtype : Dtype.t; shape : Shape.t; data : data }

let fcreate n : farray = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let empty_f : farray = fcreate 0

let numel t = Shape.numel t.shape
let rank t = Shape.rank t.shape
let dtype t = t.dtype
let shape t = t.shape

let create dtype shape =
  let n = Shape.numel shape in
  let data =
    match dtype with
    | Dtype.F32 | F64 ->
        let a = fcreate n in
        Bigarray.Array1.fill a 0.;
        F a
    | I32 | I64 -> I (Array.make n 0)
    | Bool -> B (Array.make n false)
  in
  { dtype; shape; data }

let init_f dtype shape f =
  if not (Dtype.is_float dtype) then invalid_arg "Nd.init_f: not a float dtype";
  let n = Shape.numel shape in
  let a = fcreate n in
  for i = 0 to n - 1 do
    a.{i} <- Dtype.normalize_float dtype (f i)
  done;
  { dtype; shape; data = F a }

let init_i dtype shape f =
  if not (Dtype.is_int dtype) then invalid_arg "Nd.init_i: not an int dtype";
  let n = Shape.numel shape in
  { dtype; shape; data = I (Array.init n (fun i -> Dtype.normalize_int dtype (f i))) }

let init_b shape f =
  let n = Shape.numel shape in
  { dtype = Dtype.Bool; shape; data = B (Array.init n f) }

let full_f dtype shape v = init_f dtype shape (fun _ -> v)
let full_i dtype shape v = init_i dtype shape (fun _ -> v)
let full_b shape v = init_b shape (fun _ -> v)
let scalar_f dtype v = full_f dtype Shape.scalar v
let scalar_i dtype v = full_i dtype Shape.scalar v
let scalar_b v = full_b Shape.scalar v

let of_floats dtype shape a =
  if Array.length a <> Shape.numel shape then
    invalid_arg "Nd.of_floats: length mismatch";
  init_f dtype shape (fun i -> a.(i))

let of_ints dtype shape a =
  if Array.length a <> Shape.numel shape then
    invalid_arg "Nd.of_ints: length mismatch";
  init_i dtype shape (fun i -> a.(i))

let copy t =
  let data =
    match t.data with
    | F a ->
        let b = fcreate (Bigarray.Array1.dim a) in
        Bigarray.Array1.blit a b;
        F b
    | I a -> I (Array.copy a)
    | B a -> B (Array.copy a)
  in
  { t with data }

let get_f t i =
  match t.data with
  | F a -> a.{i}
  | I _ | B _ -> invalid_arg "Nd.get_f: not a float tensor"

let set_f t i v =
  match t.data with
  | F a -> a.{i} <- Dtype.normalize_float t.dtype v
  | I _ | B _ -> invalid_arg "Nd.set_f: not a float tensor"

let get_i t i =
  match t.data with
  | I a -> a.(i)
  | F _ | B _ -> invalid_arg "Nd.get_i: not an int tensor"

let set_i t i v =
  match t.data with
  | I a -> a.(i) <- Dtype.normalize_int t.dtype v
  | F _ | B _ -> invalid_arg "Nd.set_i: not an int tensor"

let get_b t i =
  match t.data with
  | B a -> a.(i)
  | F _ | I _ -> invalid_arg "Nd.get_b: not a bool tensor"

let set_b t i v =
  match t.data with
  | B a -> a.(i) <- v
  | F _ | I _ -> invalid_arg "Nd.set_b: not a bool tensor"

let to_float t i =
  match t.data with
  | F a -> a.{i}
  | I a -> float_of_int a.(i)
  | B a -> if a.(i) then 1. else 0.

let to_int t i =
  match t.data with
  | F a ->
      let x = a.{i} in
      if Float.is_nan x then 0 else int_of_float (Float.trunc x)
  | I a -> a.(i)
  | B a -> if a.(i) then 1 else 0

let float_data t =
  match t.data with
  | F a -> a
  | I _ | B _ -> invalid_arg "Nd.float_data: not a float tensor"

let float_array t =
  match t.data with
  | F a -> Array.init (Bigarray.Array1.dim a) (fun i -> a.{i})
  | I _ | B _ -> invalid_arg "Nd.float_array: not a float tensor"

(* ------------------------------------------------------------------ *)
(* Destination-passing primitives.  These write through [set_f]/[set_i],
   so results are normalised exactly as the allocating constructors
   ([init_f] et al.) normalise — a plan-compiled kernel writing into a
   reused buffer produces the same bits as a fresh allocation. *)

let fill_f t v =
  match t.data with
  | F a -> Bigarray.Array1.fill a (Dtype.normalize_float t.dtype v)
  | I _ | B _ -> invalid_arg "Nd.fill_f: not a float tensor"

let blit_into ~src ~dst =
  if not (Dtype.equal src.dtype dst.dtype) then
    invalid_arg "Nd.blit_into: dtype mismatch";
  if not (Shape.equal src.shape dst.shape) then
    invalid_arg "Nd.blit_into: shape mismatch";
  match (src.data, dst.data) with
  | F a, F b -> Bigarray.Array1.blit a b
  | I a, I b -> Array.blit a 0 b 0 (Array.length a)
  | B a, B b -> Array.blit a 0 b 0 (Array.length a)
  | (F _ | I _ | B _), _ -> invalid_arg "Nd.blit_into: representation mismatch"

let copy_data_into ~src ~dst =
  if not (Dtype.equal src.dtype dst.dtype) then
    invalid_arg "Nd.copy_data_into: dtype mismatch";
  if numel src <> numel dst then
    invalid_arg "Nd.copy_data_into: size mismatch";
  match (src.data, dst.data) with
  | F a, F b -> Bigarray.Array1.blit a b
  | I a, I b -> Array.blit a 0 b 0 (Array.length a)
  | B a, B b -> Array.blit a 0 b 0 (Array.length a)
  | (F _ | I _ | B _), _ ->
      invalid_arg "Nd.copy_data_into: representation mismatch"

let map_into f src ~dst =
  match dst.data with
  | F out ->
      let n = Bigarray.Array1.dim out in
      if numel src <> n then invalid_arg "Nd.map_into: size mismatch";
      let dt = dst.dtype in
      for i = 0 to n - 1 do
        out.{i} <- Dtype.normalize_float dt (f (to_float src i))
      done
  | I _ | B _ -> invalid_arg "Nd.map_into: not a float destination"

let map2_into ?oa ?ob f a b ~dst =
  match dst.data with
  | F out ->
      let n = Bigarray.Array1.dim out in
      let dt = dst.dtype in
      (match (oa, ob) with
      | None, None ->
          for i = 0 to n - 1 do
            out.{i} <- Dtype.normalize_float dt (f (to_float a i) (to_float b i))
          done
      | Some ma, None ->
          for i = 0 to n - 1 do
            out.{i} <-
              Dtype.normalize_float dt (f (to_float a ma.(i)) (to_float b i))
          done
      | None, Some mb ->
          for i = 0 to n - 1 do
            out.{i} <-
              Dtype.normalize_float dt (f (to_float a i) (to_float b mb.(i)))
          done
      | Some ma, Some mb ->
          for i = 0 to n - 1 do
            out.{i} <-
              Dtype.normalize_float dt
                (f (to_float a ma.(i)) (to_float b mb.(i)))
          done)
  | I _ | B _ -> invalid_arg "Nd.map2_into: not a float destination"

let map_f ?dtype f t =
  let dtype = match dtype with Some d -> d | None -> t.dtype in
  init_f dtype t.shape (fun i -> f (to_float t i))

let map_i ?dtype f t =
  let dtype = match dtype with Some d -> d | None -> t.dtype in
  init_i dtype t.shape (fun i -> f (to_int t i))

let map_b f t = init_b t.shape (fun i -> f (get_b t i))

(* ------------------------------------------------------------------ *)
(* Broadcasting.                                                       *)

let broadcast_offsets ~src ~dst =
  if not (Shape.can_broadcast_to ~src ~dst) then
    invalid_arg
      (Fmt.str "Nd.broadcast_offsets: %a does not broadcast to %a" Shape.pp src
         Shape.pp dst);
  let rd = Shape.rank dst and rs = Shape.rank src in
  let sstrides = Shape.strides src in
  (* stride of each dst axis within src, 0 when broadcast *)
  let bstrides = Array.make rd 0 in
  for i = 0 to rd - 1 do
    let j = i - (rd - rs) in
    if j >= 0 && src.(j) > 1 then bstrides.(i) <- sstrides.(j)
  done;
  let dstrides = Shape.strides dst in
  fun off ->
    let rest = ref off and acc = ref 0 in
    for i = 0 to rd - 1 do
      let idx = !rest / dstrides.(i) in
      rest := !rest mod dstrides.(i);
      acc := !acc + (idx * bstrides.(i))
    done;
    !acc

let index_map ~src ~dst =
  if Shape.equal src dst then None
  else begin
    let o = broadcast_offsets ~src ~dst in
    Some (Array.init (Shape.numel dst) o)
  end

let broadcast_shape2 a b =
  match Shape.broadcast a.shape b.shape with
  | Some s -> s
  | None ->
      invalid_arg
        (Fmt.str "Nd: shapes %a and %a do not broadcast" Shape.pp a.shape
           Shape.pp b.shape)

let map2_gen out_dtype read combine write a b =
  let out_shape = broadcast_shape2 a b in
  let oa = broadcast_offsets ~src:a.shape ~dst:out_shape
  and ob = broadcast_offsets ~src:b.shape ~dst:out_shape in
  let out = create out_dtype out_shape in
  for i = 0 to Shape.numel out_shape - 1 do
    write out i (combine (read a (oa i)) (read b (ob i)))
  done;
  out

let map2_f dtype f a b = map2_gen dtype to_float f set_f a b
let map2_i dtype f a b = map2_gen dtype to_int f set_i a b
let map2_b f a b = map2_gen Dtype.Bool get_b f set_b a b
let cmp2 f a b = map2_gen Dtype.Bool to_float f set_b a b

let where cond a b =
  if cond.dtype <> Dtype.Bool then invalid_arg "Nd.where: condition not bool";
  if a.dtype <> b.dtype then invalid_arg "Nd.where: branch dtype mismatch";
  let out_shape =
    match Shape.broadcast_many [ cond.shape; a.shape; b.shape ] with
    | Some s -> s
    | None -> invalid_arg "Nd.where: shapes do not broadcast"
  in
  let oc = broadcast_offsets ~src:cond.shape ~dst:out_shape
  and oa = broadcast_offsets ~src:a.shape ~dst:out_shape
  and ob = broadcast_offsets ~src:b.shape ~dst:out_shape in
  let n = Shape.numel out_shape in
  match a.dtype with
  | F32 | F64 ->
      init_f a.dtype out_shape (fun i ->
          if get_b cond (oc i) then to_float a (oa i) else to_float b (ob i))
  | I32 | I64 ->
      init_i a.dtype out_shape (fun i ->
          if get_b cond (oc i) then to_int a (oa i) else to_int b (ob i))
  | Bool ->
      let out = create Dtype.Bool out_shape in
      for i = 0 to n - 1 do
        set_b out i (if get_b cond (oc i) then get_b a (oa i) else get_b b (ob i))
      done;
      out

let cast t target =
  match target with
  | Dtype.F32 | F64 -> init_f target t.shape (fun i -> to_float t i)
  | I32 | I64 -> init_i target t.shape (fun i -> to_int t i)
  | Bool -> (
      match t.data with
      | B a -> { dtype = Dtype.Bool; shape = t.shape; data = B (Array.copy a) }
      | F _ | I _ -> init_b t.shape (fun i -> to_float t i <> 0.))

let broadcast_to t dst =
  let o = broadcast_offsets ~src:t.shape ~dst in
  match t.dtype with
  | F32 | F64 -> init_f t.dtype dst (fun i -> to_float t (o i))
  | I32 | I64 -> init_i t.dtype dst (fun i -> to_int t (o i))
  | Bool -> init_b dst (fun i -> get_b t (o i))

(* ------------------------------------------------------------------ *)
(* Validity and comparison.                                            *)

let bad x = Float.is_nan x || x = Float.infinity || x = Float.neg_infinity
let is_bad = bad

let count_bad t =
  match t.data with
  | F a ->
      let acc = ref 0 in
      for i = 0 to Bigarray.Array1.dim a - 1 do
        if bad a.{i} then incr acc
      done;
      !acc
  | I _ | B _ -> 0

let has_bad t =
  match t.data with
  | F a ->
      let n = Bigarray.Array1.dim a in
      let rec go i = i < n && (bad a.{i} || go (i + 1)) in
      go 0
  | I _ | B _ -> false

let max_abs t =
  let n = numel t in
  let m = ref 0. in
  for i = 0 to n - 1 do
    let x = Float.abs (to_float t i) in
    if x > !m then m := x
  done;
  !m

let approx_equal ?(rtol = 1e-2) ?(atol = 1e-3) a b =
  Shape.equal a.shape b.shape
  && Dtype.is_float a.dtype = Dtype.is_float b.dtype
  &&
  let n = numel a in
  let ok = ref true in
  for i = 0 to n - 1 do
    let x = to_float a i and y = to_float b i in
    let both_nan = Float.is_nan x && Float.is_nan y in
    let same_inf = x = y (* catches matching infinities and exact values *) in
    if not (both_nan || same_inf) then
      if Float.is_nan x || Float.is_nan y then ok := false
      else if Float.abs (x -. y) > atol +. (rtol *. Float.max (Float.abs x) (Float.abs y))
      then ok := false
  done;
  !ok

let max_rel_error a b =
  if not (Shape.equal a.shape b.shape) then infinity
  else begin
    let n = numel a in
    let worst = ref 0. in
    for i = 0 to n - 1 do
      let x = to_float a i and y = to_float b i in
      let err =
        if Float.is_nan x && Float.is_nan y then 0.
        else if Float.is_nan x || Float.is_nan y then infinity
        else if x = y then 0.
        else Float.abs (x -. y) /. Float.max 1. (Float.max (Float.abs x) (Float.abs y))
      in
      if err > !worst then worst := err
    done;
    !worst
  end

(* ------------------------------------------------------------------ *)
(* Random initialisation.                                              *)

let random_f rng dtype shape ~lo ~hi =
  init_f dtype shape (fun _ -> lo +. Random.State.float rng (hi -. lo))

let random_i rng dtype shape ~lo ~hi =
  init_i dtype shape (fun _ -> lo + Random.State.int rng (max 1 (hi - lo + 1)))

let random_b rng shape = init_b shape (fun _ -> Random.State.bool rng)

(* In-place refills for the gradient search's restart loop: identical draw
   order and normalization to [random_f]/[random_i]/[random_b]/[full_*]
   (ascending element index, one draw per element), so refilling a live
   tensor consumes the rng stream exactly as allocating a fresh one would.
   [dst] must already have the target dtype and shape. *)

let refill_f_into rng ~lo ~hi (dst : t) =
  match dst.data with
  | F a ->
      let n = Shape.numel dst.shape in
      for i = 0 to n - 1 do
        a.{i} <-
          Dtype.normalize_float dst.dtype (lo +. Random.State.float rng (hi -. lo))
      done
  | _ -> invalid_arg "Nd.refill_f_into: not a float tensor"

let refill_i_into rng ~lo ~hi (dst : t) =
  match dst.data with
  | I a ->
      let n = Shape.numel dst.shape in
      for i = 0 to n - 1 do
        a.(i) <-
          Dtype.normalize_int dst.dtype
            (lo + Random.State.int rng (max 1 (hi - lo + 1)))
      done
  | _ -> invalid_arg "Nd.refill_i_into: not an int tensor"

let refill_b_into rng (dst : t) =
  match dst.data with
  | B a ->
      let n = Shape.numel dst.shape in
      for i = 0 to n - 1 do
        a.(i) <- Random.State.bool rng
      done
  | _ -> invalid_arg "Nd.refill_b_into: not a bool tensor"

let fill_const_into v (dst : t) =
  match dst.data with
  | F a ->
      let v = Dtype.normalize_float dst.dtype v in
      Bigarray.Array1.fill a v
  | I a -> Array.fill a 0 (Array.length a) (Dtype.normalize_int dst.dtype (int_of_float v))
  | B a -> Array.fill a 0 (Array.length a) (v <> 0.)

let equal a b =
  Dtype.equal a.dtype b.dtype && Shape.equal a.shape b.shape
  &&
  match (a.data, b.data) with
  | F x, F y ->
      (* bitwise so that NaN = NaN *)
      let n = Bigarray.Array1.dim x in
      let rec go i =
        i >= n
        || (Int64.equal (Int64.bits_of_float x.{i}) (Int64.bits_of_float y.{i})
           && go (i + 1))
      in
      go 0
  | I x, I y -> x = y
  | B x, B y -> x = y
  | (F _ | I _ | B _), _ -> false

let pp ppf t =
  let n = numel t in
  let k = min n 8 in
  let elt i =
    match t.data with
    | F a -> Fmt.str "%g" a.{i}
    | I a -> string_of_int a.(i)
    | B a -> string_of_bool a.(i)
  in
  let elems = List.init k elt in
  Fmt.pf ppf "%a%a{%s%s}" Dtype.pp t.dtype Shape.pp t.shape
    (String.concat ", " elems)
    (if n > k then ", ..." else "")

let to_string t = Fmt.str "%a" pp t
