(** Dense row-major NDArrays over {!Dtype} elements.

    The representation is exposed so the kernel modules ({!Linalg},
    {!Transform}, {!Reduce}) in this library can operate on raw buffers;
    client code should treat values as immutable and build them through the
    constructors here. *)

type farray = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Unboxed float storage: a flat 64-bit Bigarray outside the OCaml heap.
    F32 tensors also store float64 elements, rounded through
    [Dtype.round_f32] at every write site. *)

type data = F of farray | I of int array | B of bool array

type t = { dtype : Dtype.t; shape : Shape.t; data : data }

val empty_f : farray
(** A shared zero-length float buffer, for shape/dtype-only phantom
    tensors that are never read element-wise. *)

val create : Dtype.t -> Shape.t -> t
(** Zero-initialised. *)

val init_f : Dtype.t -> Shape.t -> (int -> float) -> t
(** Float tensor from a linear-index generator; values are normalised to the
    dtype's precision.  Raises [Invalid_argument] on non-float dtypes. *)

val init_i : Dtype.t -> Shape.t -> (int -> int) -> t
val init_b : Shape.t -> (int -> bool) -> t

val full_f : Dtype.t -> Shape.t -> float -> t
val full_i : Dtype.t -> Shape.t -> int -> t
val full_b : Shape.t -> bool -> t

val scalar_f : Dtype.t -> float -> t
val scalar_i : Dtype.t -> int -> t
val scalar_b : bool -> t

val of_floats : Dtype.t -> Shape.t -> float array -> t
(** Copies and normalises. Length must equal [Shape.numel]. *)

val of_ints : Dtype.t -> Shape.t -> int array -> t

val numel : t -> int
val rank : t -> int
val dtype : t -> Dtype.t
val shape : t -> Shape.t
val copy : t -> t

val get_f : t -> int -> float
(** Linear read of a float tensor. *)

val set_f : t -> int -> float -> unit
val get_i : t -> int -> int
val set_i : t -> int -> int -> unit
val get_b : t -> int -> bool
val set_b : t -> int -> bool -> unit

val to_float : t -> int -> float
(** Linear read of any dtype as float (bool reads as 0/1). *)

val to_int : t -> int -> int
(** Linear read of any dtype as int (floats truncate toward zero; NaN reads
    as 0). *)

val float_data : t -> farray
(** Underlying buffer of a float tensor (shared, not copied).
    Raises [Invalid_argument] otherwise. *)

val float_array : t -> float array
(** Copy of a float tensor's elements as a boxed [float array] — the
    boundary accessor for external runtimes that consume plain arrays.
    Raises [Invalid_argument] on non-float tensors. *)

val fill_f : t -> float -> unit
(** Overwrite every element of a float tensor with the (normalised) value. *)

val blit_into : src:t -> dst:t -> unit
(** Raw copy between tensors of identical dtype and shape. *)

val copy_data_into : src:t -> dst:t -> unit
(** Raw copy between tensors of identical dtype and element count; shapes may
    differ (used for reshape-family kernels writing into a plan buffer). *)

val map_into : (float -> float) -> t -> dst:t -> unit
(** Destination-passing [map_f]: reads the source as float, writes normalised
    results into the float tensor [dst] (same element count).  Writing through
    {!set_f} semantics keeps results bit-identical to [map_f]. *)

val map2_into :
  ?oa:int array -> ?ob:int array -> (float -> float -> float) -> t -> t ->
  dst:t -> unit
(** Destination-passing broadcasting binary op.  [oa]/[ob] are precomputed
    linear index maps from [dst] positions into each source (see
    {!index_map}); omitted maps mean the source already has [dst]'s shape. *)

val map_f : ?dtype:Dtype.t -> (float -> float) -> t -> t
(** Elementwise over a float tensor; result dtype defaults to the input's. *)

val map_i : ?dtype:Dtype.t -> (int -> int) -> t -> t
val map_b : (bool -> bool) -> t -> t

val broadcast_offsets : src:Shape.t -> dst:Shape.t -> (int -> int)
(** [broadcast_offsets ~src ~dst] maps a linear index in [dst] to the linear
    index of the broadcast source element in [src].
    Raises [Invalid_argument] when [src] does not broadcast to [dst]. *)

val index_map : src:Shape.t -> dst:Shape.t -> int array option
(** Materialised broadcast index map: element [i] is the source offset feeding
    destination position [i].  [None] when the shapes are equal (identity).
    Raises [Invalid_argument] when [src] does not broadcast to [dst]. *)

val map2_f : Dtype.t -> (float -> float -> float) -> t -> t -> t
(** Broadcasting binary op over float tensors; output has the broadcast
    shape and the given dtype. *)

val map2_i : Dtype.t -> (int -> int -> int) -> t -> t -> t
val map2_b : (bool -> bool -> bool) -> t -> t -> t

val cmp2 : (float -> float -> bool) -> t -> t -> t
(** Broadcasting comparison over numeric tensors (read as float); output is
    Bool. *)

val where : t -> t -> t -> t
(** [where cond a b]: three-way broadcasting select; [cond] must be Bool,
    [a] and [b] must share a dtype. *)

val cast : t -> Dtype.t -> t
(** Float->int truncates toward zero; anything->bool tests [<> 0];
    bool->number yields 0/1. *)

val broadcast_to : t -> Shape.t -> t
(** Materialised broadcast.  Raises [Invalid_argument] when impossible. *)

val is_bad : float -> bool
(** True for NaN and the infinities — the scalar predicate behind
    {!has_bad}. *)

val has_bad : t -> bool
(** True when a float tensor contains a NaN or infinity; always false for
    integer/bool tensors. *)

val count_bad : t -> int

val max_abs : t -> float
(** Largest absolute value, reading any dtype as float; 0 for empty. *)

val approx_equal : ?rtol:float -> ?atol:float -> t -> t -> bool
(** Same dtype-kind, same shape, and elementwise
    [|a - b| <= atol + rtol * max(|a|, |b|)].  NaNs compare equal to NaNs so
    that two backends that both produce NaN are not flagged as a semantic
    difference. *)

val max_rel_error : t -> t -> float
(** Diagnostic: largest [|a - b| / max(1, |a|, |b|)] over the elements;
    [infinity] when shapes mismatch or exactly one side is NaN. *)

val random_f : Random.State.t -> Dtype.t -> Shape.t -> lo:float -> hi:float -> t
val random_i : Random.State.t -> Dtype.t -> Shape.t -> lo:int -> hi:int -> t
val random_b : Random.State.t -> Shape.t -> t

val refill_f_into : Random.State.t -> lo:float -> hi:float -> t -> unit
(** Redraw every element in place, consuming the rng stream exactly as
    {!random_f} would (same order, same normalization). *)

val refill_i_into : Random.State.t -> lo:int -> hi:int -> t -> unit
val refill_b_into : Random.State.t -> t -> unit

val fill_const_into : float -> t -> unit
(** Overwrite with the constant {!full_f}/{!full_i}/{!full_b} would use
    for this tensor's dtype (float value truncated / compared as those
    constructors do). *)

val equal : t -> t -> bool
(** Structural: dtype, shape and bitwise-identical contents. *)

val pp : Format.formatter -> t -> unit
(** Shape, dtype and up to 8 leading elements. *)

val to_string : t -> string
