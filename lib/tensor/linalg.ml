let require_float name (t : Nd.t) =
  if not (Dtype.is_float t.Nd.dtype) then
    invalid_arg (Printf.sprintf "Linalg.%s: not a float tensor" name)

(* Shared core: both operands rank >= 2, [dst] already has the broadcast
   result shape.  The allocating [matmul] below delegates here after rank-1
   promotion so both entry points compute identical bits. *)
let matmul_into ~dst a b =
  require_float "matmul" a;
  require_float "matmul" b;
  let sa = a.Nd.shape and sb = b.Nd.shape in
  let ra2 = Array.length sa and rb2 = Array.length sb in
  if ra2 < 2 || rb2 < 2 then invalid_arg "Linalg.matmul_into: rank < 2";
  let m = sa.(ra2 - 2) and k = sa.(ra2 - 1) in
  let k' = sb.(rb2 - 2) and n = sb.(rb2 - 1) in
  if k <> k' then
    invalid_arg
      (Fmt.str "Linalg.matmul: contraction mismatch %a vs %a" Shape.pp sa
         Shape.pp sb);
  let batch_a = Array.sub sa 0 (ra2 - 2) and batch_b = Array.sub sb 0 (rb2 - 2) in
  let batch =
    match Shape.broadcast batch_a batch_b with
    | Some s -> s
    | None -> invalid_arg "Linalg.matmul: batch dims do not broadcast"
  in
  let out_shape = Array.append batch [| m; n |] in
  let abatch_shape = Array.append batch [| m; k |] in
  let bbatch_shape = Array.append batch [| k; n |] in
  let dtype = a.Nd.dtype in
  if not (Dtype.equal dtype (Nd.dtype dst)) then
    invalid_arg "Linalg.matmul_into: destination dtype mismatch";
  if not (Shape.equal out_shape (Nd.shape dst)) then
    invalid_arg "Linalg.matmul_into: destination shape mismatch";
  let oa = Nd.broadcast_offsets ~src:sa ~dst:abatch_shape in
  let ob = Nd.broadcast_offsets ~src:sb ~dst:bbatch_shape in
  let nb = Shape.numel batch in
  let out_data = Nd.float_data dst in
  for bi = 0 to nb - 1 do
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0. in
        for l = 0 to k - 1 do
          let av = Nd.to_float a (oa (((bi * m) + i) * k + l)) in
          let bv = Nd.to_float b (ob (((bi * k) + l) * n + j)) in
          acc := !acc +. (av *. bv)
        done;
        out_data.{(((bi * m) + i) * n) + j} <- Dtype.normalize_float dtype !acc
      done
    done
  done

let matmul a b =
  require_float "matmul" a;
  require_float "matmul" b;
  let ra = Nd.rank a and rb = Nd.rank b in
  if ra < 1 || rb < 1 then invalid_arg "Linalg.matmul: rank < 1";
  (* promote rank-1 operands, remembering which unit dims to squeeze *)
  let a2 = if ra = 1 then Transform.unsqueeze a 0 else a in
  let b2 = if rb = 1 then Transform.unsqueeze b 1 else b in
  let sa = a2.Nd.shape and sb = b2.Nd.shape in
  let ra2 = Array.length sa and rb2 = Array.length sb in
  let m = sa.(ra2 - 2) and k = sa.(ra2 - 1) in
  let k' = sb.(rb2 - 2) and n = sb.(rb2 - 1) in
  if k <> k' then
    invalid_arg
      (Fmt.str "Linalg.matmul: contraction mismatch %a vs %a" Shape.pp
         a.Nd.shape Shape.pp b.Nd.shape);
  let batch_a = Array.sub sa 0 (ra2 - 2) and batch_b = Array.sub sb 0 (rb2 - 2) in
  let batch =
    match Shape.broadcast batch_a batch_b with
    | Some s -> s
    | None -> invalid_arg "Linalg.matmul: batch dims do not broadcast"
  in
  let out_shape = Array.append batch [| m; n |] in
  let out = Nd.create a.Nd.dtype out_shape in
  matmul_into ~dst:out a2 b2;
  let out =
    if ra = 1 then Transform.squeeze out [ Array.length out_shape - 2 ]
    else out
  in
  if rb = 1 then Transform.squeeze out [ Nd.rank out - 1 ] else out

let conv2d_dims ~stride ~padding ~dilation (input : Nd.t) (weight : Nd.t) =
  require_float "conv2d" input;
  require_float "conv2d" weight;
  if Nd.rank input <> 4 || Nd.rank weight <> 4 then
    invalid_arg "Linalg.conv2d: input and weight must be rank 4";
  let si = input.Nd.shape and sw = weight.Nd.shape in
  let n = si.(0) and c = si.(1) and h = si.(2) and w = si.(3) in
  let f = sw.(0) and cw = sw.(1) and kh = sw.(2) and kw = sw.(3) in
  if c <> cw then invalid_arg "Linalg.conv2d: channel mismatch";
  let sh, sw_ = stride and ph, pw = padding and dh, dw = dilation in
  let oh = ((h + (2 * ph) - (dh * (kh - 1)) - 1) / sh) + 1
  and ow = ((w + (2 * pw) - (dw * (kw - 1)) - 1) / sw_) + 1 in
  if oh < 1 || ow < 1 then invalid_arg "Linalg.conv2d: empty output";
  (n, c, h, w, f, kh, kw, oh, ow)

let conv2d_into ?bias ~stride ~padding ~dilation ~dst input weight =
  let n, c, h, w, f, kh, kw, oh, ow =
    conv2d_dims ~stride ~padding ~dilation input weight
  in
  if
    (not (Dtype.equal input.Nd.dtype (Nd.dtype dst)))
    || not (Shape.equal [| n; f; oh; ow |] (Nd.shape dst))
  then invalid_arg "Linalg.conv2d_into: destination mismatch";
  let sh, sw_ = stride and ph, pw = padding and dh, dw = dilation in
  let get_bias fo = match bias with None -> 0. | Some b -> Nd.to_float b fo in
  for li = 0 to (n * f * oh * ow) - 1 do
    let ow_i = li mod ow in
    let oh_i = li / ow mod oh in
    let f_i = li / (ow * oh) mod f in
    let n_i = li / (ow * oh * f) in
    let acc = ref (get_bias f_i) in
    for ci = 0 to c - 1 do
      for ki = 0 to kh - 1 do
        for kj = 0 to kw - 1 do
          let hi = (oh_i * sh) - ph + (ki * dh) in
          let wi = (ow_i * sw_) - pw + (kj * dw) in
          if hi >= 0 && hi < h && wi >= 0 && wi < w then begin
            let iv = Nd.to_float input ((((n_i * c) + ci) * h + hi) * w + wi) in
            let wv =
              Nd.to_float weight ((((f_i * c) + ci) * kh + ki) * kw + kj)
            in
            acc := !acc +. (iv *. wv)
          end
        done
      done
    done;
    Nd.set_f dst li !acc
  done

let conv2d ?bias ~stride ~padding ~dilation input weight =
  let n, _, _, _, f, _, _, oh, ow =
    conv2d_dims ~stride ~padding ~dilation input weight
  in
  let out = Nd.create input.Nd.dtype [| n; f; oh; ow |] in
  conv2d_into ?bias ~stride ~padding ~dilation ~dst:out input weight;
  out

type pool_kind = Max_pool | Avg_pool

let pool2d_dims ~kernel ~stride ~padding (input : Nd.t) =
  require_float "pool2d" input;
  if Nd.rank input <> 4 then invalid_arg "Linalg.pool2d: input must be rank 4";
  let si = input.Nd.shape in
  let n = si.(0) and c = si.(1) and h = si.(2) and w = si.(3) in
  let kh, kw = kernel and sh, sw_ = stride and ph, pw = padding in
  if kh < 1 || kw < 1 then invalid_arg "Linalg.pool2d: kernel < 1";
  let oh = ((h + (2 * ph) - kh) / sh) + 1
  and ow = ((w + (2 * pw) - kw) / sw_) + 1 in
  if oh < 1 || ow < 1 then invalid_arg "Linalg.pool2d: empty output";
  (n, c, h, w, oh, ow)

let pool2d_into ~kind ~kernel ~stride ~padding ~dst input =
  let n, c, h, w, oh, ow = pool2d_dims ~kernel ~stride ~padding input in
  if
    (not (Dtype.equal input.Nd.dtype (Nd.dtype dst)))
    || not (Shape.equal [| n; c; oh; ow |] (Nd.shape dst))
  then invalid_arg "Linalg.pool2d_into: destination mismatch";
  let kh, kw = kernel and sh, sw_ = stride and ph, pw = padding in
  for li = 0 to (n * c * oh * ow) - 1 do
    let ow_i = li mod ow in
    let oh_i = li / ow mod oh in
    let c_i = li / (ow * oh) mod c in
    let n_i = li / (ow * oh * c) in
    let acc =
      ref (match kind with Max_pool -> Float.neg_infinity | Avg_pool -> 0.)
    in
    let count = ref 0 in
    for ki = 0 to kh - 1 do
      for kj = 0 to kw - 1 do
        let hi = (oh_i * sh) - ph + ki and wi = (ow_i * sw_) - pw + kj in
        if hi >= 0 && hi < h && wi >= 0 && wi < w then begin
          let v = Nd.to_float input ((((n_i * c) + c_i) * h + hi) * w + wi) in
          incr count;
          acc :=
            (match kind with
            | Max_pool ->
                if Float.is_nan v || Float.is_nan !acc then Float.nan
                else Float.max !acc v
            | Avg_pool -> !acc +. v)
        end
      done
    done;
    Nd.set_f dst li
      (match kind with
      | Max_pool -> !acc
      | Avg_pool -> if !count = 0 then 0. else !acc /. float_of_int !count)
  done

let pool2d ~kind ~kernel ~stride ~padding input =
  let n, c, _, _, oh, ow = pool2d_dims ~kernel ~stride ~padding input in
  let out = Nd.create input.Nd.dtype [| n; c; oh; ow |] in
  pool2d_into ~kind ~kernel ~stride ~padding ~dst:out input;
  out
