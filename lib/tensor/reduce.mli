(** Reduction kernels: sum/mean/prod/max/min, argmax/argmin, softmax.

    NaN propagates through all float reductions; [argmax]/[argmin] treat NaN
    as the extreme value (first occurrence wins), matching the numpy/ONNX
    behaviour the paper's ArgMax discussion relies on. *)

type plan
(** Precompiled reduction geometry for one (source shape, axes, keepdims)
    combination: per-output-cell base offsets plus per-window-element offset
    deltas.  Applying a plan folds the window in the same order as the
    allocating entry points, so results are bit-identical. *)

val plan : axes:int list -> keepdims:bool -> Shape.t -> plan
(** Raises [Invalid_argument] on out-of-range axes.  An empty axis list
    reduces all axes. *)

val out_shape : plan -> Shape.t

val sum_into : plan -> Nd.t -> dst:Nd.t -> unit
(** Destination-passing float reductions; the source must be a float tensor
    whose shape the plan was built for, and [dst] must have the plan's output
    shape. *)

val mean_into : plan -> Nd.t -> dst:Nd.t -> unit
val prod_into : plan -> Nd.t -> dst:Nd.t -> unit
val max_into : plan -> Nd.t -> dst:Nd.t -> unit
val min_into : plan -> Nd.t -> dst:Nd.t -> unit

val sum : ?keepdims:bool -> axes:int list -> Nd.t -> Nd.t
(** Works for float and integer tensors; an empty axis list reduces all
    axes. *)

val mean : ?keepdims:bool -> axes:int list -> Nd.t -> Nd.t
(** Float tensors only. *)

val prod : ?keepdims:bool -> axes:int list -> Nd.t -> Nd.t
val max_ : ?keepdims:bool -> axes:int list -> Nd.t -> Nd.t
val min_ : ?keepdims:bool -> axes:int list -> Nd.t -> Nd.t

val argmax : ?keepdims:bool -> axis:int -> Nd.t -> Nd.t
(** Result dtype is I64. *)

val argmin : ?keepdims:bool -> axis:int -> Nd.t -> Nd.t

val softmax : axis:int -> Nd.t -> Nd.t
(** Numerically-stabilised (max-shifted) softmax over one axis; float
    tensors only. *)
