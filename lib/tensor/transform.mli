(** Shape-changing tensor kernels: reshape, transpose, slice, pad, concat. *)

val reshape : Nd.t -> Shape.t -> Nd.t
(** Element counts must match; raises [Invalid_argument] otherwise. *)

val transpose : Nd.t -> int array -> Nd.t
(** [transpose t perm]: [perm] must be a permutation of [0..rank-1]. *)

val slice :
  Nd.t -> starts:int array -> stops:int array -> steps:int array -> Nd.t
(** Per-axis slicing with exclusive stops and positive steps.  All three
    arrays must have length [rank t]; starts/stops are clamped to the axis
    bounds (negative values count from the end, as in ONNX). *)

type pad_mode = Constant of float | Reflect | Replicate

val pad : Nd.t -> before:int array -> after:int array -> mode:pad_mode -> Nd.t
(** Negative amounts crop.  [Reflect] mirrors without repeating the border
    and requires pad < dim; [Replicate] clamps to the edge. *)

val concat : axis:int -> Nd.t list -> Nd.t
(** All inputs share dtype, rank, and non-axis dims. *)

val squeeze : Nd.t -> int list -> Nd.t
(** Remove the given size-1 axes; an empty list removes all size-1 axes. *)

val unsqueeze : Nd.t -> int -> Nd.t
val flatten : Nd.t -> axis:int -> Nd.t
(** Collapse to 2-D [(d0*..*d(axis-1)) x (daxis*..*dn)] as in ONNX. *)

val expand : Nd.t -> Shape.t -> Nd.t
(** Alias of {!Nd.broadcast_to} with ONNX BroadcastTo semantics. *)

(** {2 Plan-compiled index maps}

    Each [*_map] builder shares its index formula with the allocating kernel
    above, returning the output shape plus a materialised per-output-position
    source-offset array that {!gather_into} (or an execution plan) can replay
    without recomputing any index arithmetic.  They raise the same
    [Invalid_argument] errors as their allocating counterparts. *)

val transpose_map : Shape.t -> int array -> Shape.t * int array

val slice_map :
  Shape.t -> starts:int array -> stops:int array -> steps:int array ->
  Shape.t * int array

val pad_map :
  Shape.t -> before:int array -> after:int array -> mode:pad_mode ->
  Shape.t * int array * float
(** Map entries of [-1] mark fill positions; the returned float is the fill
    value. *)

val concat_spec : axis:int -> Shape.t list -> Shape.t * (int -> int * int)
(** Output shape plus a function from output position to
    [(part index, offset within part)].  Validates rank/axis/non-axis dims
    (but not dtypes — {!concat} checks those). *)

val gather_into : Nd.t -> map:int array -> fill:float -> dst:Nd.t -> unit
(** Destination-passing gather over a materialised map; entry [-1] writes the
    fill value (converted per dtype exactly as the allocating [gather]). *)
