(** Concrete tensor shapes and index arithmetic (row-major). *)

type t = int array

val scalar : t
(** Rank-0 shape. *)

val rank : t -> int
val numel : t -> int
(** Product of dimensions; 1 for scalars. *)

val equal : t -> t -> bool
val strides : t -> int array
(** Row-major strides; stride of a size-1 trailing dim is 1.  Memoized per
    domain — treat the result as read-only. *)

val ravel : t -> int array -> int
(** Multi-index to linear offset.  No bounds check. *)

val unravel : t -> int -> int array
(** Linear offset to multi-index. *)

val broadcast : t -> t -> t option
(** Numpy-style broadcast of two shapes; [None] when incompatible. *)

val broadcast_many : t list -> t option

val can_broadcast_to : src:t -> dst:t -> bool
(** Whether [src] broadcasts to exactly [dst]. *)

val validate : t -> bool
(** All dimensions >= 1. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_list : int list -> t
val to_list : t -> int list
