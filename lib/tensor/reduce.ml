let normalize_axes r axes =
  let axes = match axes with [] -> List.init r Fun.id | _ -> axes in
  List.iter
    (fun a -> if a < 0 || a >= r then invalid_arg "Reduce: bad axis")
    axes;
  List.sort_uniq compare axes

let out_shape_of shape axes keepdims =
  let r = Array.length shape in
  if keepdims then
    Array.init r (fun k -> if List.mem k axes then 1 else shape.(k))
  else begin
    let kept = List.filter (fun k -> not (List.mem k axes)) (List.init r Fun.id) in
    Array.of_list (List.map (fun k -> shape.(k)) kept)
  end

(* Precompiled reduction geometry: per-output-cell base offsets and
   per-window-element offset deltas.  Built once (per execution plan, or per
   call for the allocating entry points), then applied with a flat
   double loop — the fold order over the window is identical to the original
   unravel-per-element formulation, so results are bit-identical. *)
type plan = {
  rp_shape : Shape.t;
  rp_out_shape : Shape.t;
  rp_bases : int array;
  rp_woffs : int array;
}

let plan ~axes ~keepdims shape =
  let r = Array.length shape in
  let axes = normalize_axes r axes in
  let out_shape = out_shape_of shape axes keepdims in
  let kept = List.filter (fun k -> not (List.mem k axes)) (List.init r Fun.id) in
  let window = List.fold_left (fun acc a -> acc * shape.(a)) 1 axes in
  let axes_arr = Array.of_list axes in
  let kept_arr = Array.of_list kept in
  let strides = Shape.strides shape in
  (* shape of the iteration space over kept dims, used to decode out index *)
  let kept_shape = Array.map (fun k -> shape.(k)) kept_arr in
  let axes_shape = Array.map (fun a -> shape.(a)) axes_arr in
  let bases =
    Array.init (Shape.numel out_shape) (fun oi ->
        let kidx = Shape.unravel kept_shape oi in
        let base = ref 0 in
        Array.iteri
          (fun j k -> base := !base + (kidx.(j) * strides.(k)))
          kept_arr;
        !base)
  in
  let woffs =
    Array.init window (fun w ->
        let widx = Shape.unravel axes_shape w in
        let off = ref 0 in
        Array.iteri (fun j a -> off := !off + (widx.(j) * strides.(a))) axes_arr;
        !off)
  in
  { rp_shape = shape; rp_out_shape = out_shape; rp_bases = bases; rp_woffs = woffs }

let out_shape p = p.rp_out_shape

let apply p (t : Nd.t) ~init_of ~combine_f ~finish_f ~dst =
  if not (Shape.equal p.rp_shape t.Nd.shape) then
    invalid_arg "Reduce.apply: plan/source shape mismatch";
  let window = Array.length p.rp_woffs in
  let woffs = p.rp_woffs and bases = p.rp_bases in
  for oi = 0 to Array.length bases - 1 do
    let base = bases.(oi) in
    let acc = ref (init_of ()) in
    for w = 0 to window - 1 do
      acc := combine_f !acc (Nd.to_float t (base + woffs.(w)))
    done;
    Nd.set_f dst oi (finish_f !acc window)
  done

let reduce_gen (t : Nd.t) axes keepdims ~init_of ~combine_f ~finish_f =
  let p = plan ~axes ~keepdims t.Nd.shape in
  let odtype =
    match t.Nd.dtype with
    | Dtype.F32 | F64 -> t.Nd.dtype
    | I32 | I64 | Bool -> Dtype.F64
  in
  let out = Nd.create odtype p.rp_out_shape in
  apply p t ~init_of ~combine_f ~finish_f ~dst:out;
  out

let require_numeric name (t : Nd.t) =
  if t.Nd.dtype = Dtype.Bool then
    invalid_arg (Printf.sprintf "Reduce.%s: bool tensor" name)

let combine_nan_aware f a b =
  if Float.is_nan a || Float.is_nan b then Float.nan else f a b

let sum ?(keepdims = false) ~axes t =
  require_numeric "sum" t;
  let out =
    reduce_gen t axes keepdims
      ~init_of:(fun () -> 0.)
      ~combine_f:( +. )
      ~finish_f:(fun acc _ -> acc)
  in
  if Dtype.is_int t.Nd.dtype then Nd.cast out t.Nd.dtype else out

let mean ?(keepdims = false) ~axes t =
  if not (Dtype.is_float t.Nd.dtype) then invalid_arg "Reduce.mean: not float";
  reduce_gen t axes keepdims
    ~init_of:(fun () -> 0.)
    ~combine_f:( +. )
    ~finish_f:(fun acc w -> acc /. float_of_int w)

let prod ?(keepdims = false) ~axes t =
  require_numeric "prod" t;
  let out =
    reduce_gen t axes keepdims
      ~init_of:(fun () -> 1.)
      ~combine_f:( *. )
      ~finish_f:(fun acc _ -> acc)
  in
  if Dtype.is_int t.Nd.dtype then Nd.cast out t.Nd.dtype else out

let max_ ?(keepdims = false) ~axes t =
  require_numeric "max" t;
  let out =
    reduce_gen t axes keepdims
      ~init_of:(fun () -> Float.neg_infinity)
      ~combine_f:(combine_nan_aware Float.max)
      ~finish_f:(fun acc _ -> acc)
  in
  if Dtype.is_int t.Nd.dtype then Nd.cast out t.Nd.dtype else out

let min_ ?(keepdims = false) ~axes t =
  require_numeric "min" t;
  let out =
    reduce_gen t axes keepdims
      ~init_of:(fun () -> Float.infinity)
      ~combine_f:(combine_nan_aware Float.min)
      ~finish_f:(fun acc _ -> acc)
  in
  if Dtype.is_int t.Nd.dtype then Nd.cast out t.Nd.dtype else out

(* Destination-passing float reductions over a precompiled plan.  Restricted
   to float sources (integer reductions go through the allocating entry
   points, which round-trip through F64 and cast back). *)
let require_float name (t : Nd.t) =
  if not (Dtype.is_float t.Nd.dtype) then
    invalid_arg (Printf.sprintf "Reduce.%s: not a float tensor" name)

let sum_into p t ~dst =
  require_float "sum_into" t;
  apply p t ~init_of:(fun () -> 0.) ~combine_f:( +. )
    ~finish_f:(fun acc _ -> acc)
    ~dst

let mean_into p t ~dst =
  require_float "mean_into" t;
  apply p t ~init_of:(fun () -> 0.) ~combine_f:( +. )
    ~finish_f:(fun acc w -> acc /. float_of_int w)
    ~dst

let prod_into p t ~dst =
  require_float "prod_into" t;
  apply p t ~init_of:(fun () -> 1.) ~combine_f:( *. )
    ~finish_f:(fun acc _ -> acc)
    ~dst

let max_into p t ~dst =
  require_float "max_into" t;
  apply p t
    ~init_of:(fun () -> Float.neg_infinity)
    ~combine_f:(combine_nan_aware Float.max)
    ~finish_f:(fun acc _ -> acc)
    ~dst

let min_into p t ~dst =
  require_float "min_into" t;
  apply p t
    ~init_of:(fun () -> Float.infinity)
    ~combine_f:(combine_nan_aware Float.min)
    ~finish_f:(fun acc _ -> acc)
    ~dst

let arg_extremum ~better ?(keepdims = false) ~axis (t : Nd.t) =
  require_numeric "arg" t;
  let r = Nd.rank t in
  if axis < 0 || axis >= r then invalid_arg "Reduce.arg: bad axis";
  let shape = t.Nd.shape in
  let out_shape = out_shape_of shape [ axis ] keepdims in
  let kept = List.filter (fun k -> k <> axis) (List.init r Fun.id) in
  let kept_arr = Array.of_list kept in
  let kept_shape = Array.map (fun k -> shape.(k)) kept_arr in
  let strides = Shape.strides shape in
  Nd.init_i Dtype.I64 out_shape (fun oi ->
      let kidx = Shape.unravel kept_shape oi in
      let base = ref 0 in
      Array.iteri (fun j k -> base := !base + (kidx.(j) * strides.(k))) kept_arr;
      let best = ref 0 and best_v = ref (Nd.to_float t !base) in
      for j = 1 to shape.(axis) - 1 do
        let v = Nd.to_float t (!base + (j * strides.(axis))) in
        if (not (Float.is_nan !best_v)) && (Float.is_nan v || better v !best_v)
        then begin
          best := j;
          best_v := v
        end
      done;
      !best)

let argmax ?keepdims ~axis t = arg_extremum ~better:( > ) ?keepdims ~axis t
let argmin ?keepdims ~axis t = arg_extremum ~better:( < ) ?keepdims ~axis t

let softmax ~axis (t : Nd.t) =
  if not (Dtype.is_float t.Nd.dtype) then invalid_arg "Reduce.softmax: not float";
  let mx = max_ ~keepdims:true ~axes:[ axis ] t in
  let shifted = Nd.map2_f t.Nd.dtype ( -. ) t mx in
  let ex = Nd.map_f Float.exp shifted in
  let total = sum ~keepdims:true ~axes:[ axis ] ex in
  Nd.map2_f t.Nd.dtype ( /. ) ex total
