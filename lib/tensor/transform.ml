type source = Src of int | Fill

(* Build a tensor of [out_shape] whose element at linear index [i] comes from
   the source element [f i], or is the constant fill. *)
let gather (src : Nd.t) out_shape ~fill f =
  match src.Nd.dtype with
  | Dtype.F32 | F64 ->
      Nd.init_f src.dtype out_shape (fun i ->
          match f i with Src j -> Nd.to_float src j | Fill -> fill)
  | I32 | I64 ->
      Nd.init_i src.dtype out_shape (fun i ->
          match f i with
          | Src j -> Nd.to_int src j
          | Fill -> int_of_float fill)
  | Bool ->
      Nd.init_b out_shape (fun i ->
          match f i with Src j -> Nd.get_b src j | Fill -> fill <> 0.)

(* Destination-passing gather over a materialised index map (entry [i] is the
   source offset for output position [i], or -1 for the fill value).  Writes
   through [Nd.set_*], so results are bit-identical to [gather]. *)
let gather_into (src : Nd.t) ~map ~fill ~dst =
  let n = Array.length map in
  (match src.Nd.dtype with
  | Dtype.F32 | F64 ->
      for i = 0 to n - 1 do
        let j = map.(i) in
        Nd.set_f dst i (if j >= 0 then Nd.to_float src j else fill)
      done
  | I32 | I64 ->
      let ifill = int_of_float fill in
      for i = 0 to n - 1 do
        let j = map.(i) in
        Nd.set_i dst i (if j >= 0 then Nd.to_int src j else ifill)
      done
  | Bool ->
      let bfill = fill <> 0. in
      for i = 0 to n - 1 do
        let j = map.(i) in
        Nd.set_b dst i (if j >= 0 then Nd.get_b src j else bfill)
      done)

let reshape t new_shape =
  if Shape.numel t.Nd.shape <> Shape.numel new_shape then
    invalid_arg
      (Fmt.str "Transform.reshape: %a has %d elements, target %a has %d"
         Shape.pp t.Nd.shape
         (Shape.numel t.Nd.shape)
         Shape.pp new_shape (Shape.numel new_shape));
  gather t new_shape ~fill:0. (fun i -> Src i)

let is_permutation perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  Array.for_all
    (fun p ->
      if p < 0 || p >= n || seen.(p) then false
      else begin
        seen.(p) <- true;
        true
      end)
    perm

(* Shared index formula behind [transpose] and the plan-compiled map. *)
let transpose_spec src_shape perm =
  let r = Array.length src_shape in
  if Array.length perm <> r || not (is_permutation perm) then
    invalid_arg "Transform.transpose: bad permutation";
  let out_shape = Array.map (fun p -> src_shape.(p)) perm in
  let f i =
    let oidx = Shape.unravel out_shape i in
    let sidx = Array.make r 0 in
    for k = 0 to r - 1 do
      sidx.(perm.(k)) <- oidx.(k)
    done;
    Shape.ravel src_shape sidx
  in
  (out_shape, f)

let transpose t perm =
  let out_shape, f = transpose_spec t.Nd.shape perm in
  gather t out_shape ~fill:0. (fun i -> Src (f i))

let transpose_map src_shape perm =
  let out_shape, f = transpose_spec src_shape perm in
  (out_shape, Array.init (Shape.numel out_shape) f)

let clamp_index d i =
  let i = if i < 0 then i + d else i in
  max 0 (min d i)

let slice_spec src_shape ~starts ~stops ~steps =
  let r = Array.length src_shape in
  if Array.length starts <> r || Array.length stops <> r || Array.length steps <> r
  then invalid_arg "Transform.slice: rank mismatch";
  Array.iter (fun s -> if s < 1 then invalid_arg "Transform.slice: step < 1") steps;
  let starts = Array.mapi (fun k s -> clamp_index src_shape.(k) s) starts in
  let stops = Array.mapi (fun k s -> clamp_index src_shape.(k) s) stops in
  let out_shape =
    Array.init r (fun k ->
        let len = stops.(k) - starts.(k) in
        if len <= 0 then 0 else 1 + ((len - 1) / steps.(k)))
  in
  if Array.exists (fun d -> d = 0) out_shape then
    invalid_arg "Transform.slice: empty result";
  let f i =
    let oidx = Shape.unravel out_shape i in
    let sidx = Array.init r (fun k -> starts.(k) + (oidx.(k) * steps.(k))) in
    Shape.ravel src_shape sidx
  in
  (out_shape, f)

let slice t ~starts ~stops ~steps =
  let out_shape, f = slice_spec t.Nd.shape ~starts ~stops ~steps in
  gather t out_shape ~fill:0. (fun i -> Src (f i))

let slice_map src_shape ~starts ~stops ~steps =
  let out_shape, f = slice_spec src_shape ~starts ~stops ~steps in
  (out_shape, Array.init (Shape.numel out_shape) f)

type pad_mode = Constant of float | Reflect | Replicate

let reflect_index d i =
  (* mirror into [0, d) without repeating the border, as in ONNX Pad *)
  if d = 1 then 0
  else begin
    let period = 2 * (d - 1) in
    let j = ((i mod period) + period) mod period in
    if j < d then j else period - j
  end

(* Shared index formula behind [pad] and the plan-compiled map; [-1] marks a
   fill position. *)
let pad_spec src_shape ~before ~after ~mode =
  let r = Array.length src_shape in
  if Array.length before <> r || Array.length after <> r then
    invalid_arg "Transform.pad: rank mismatch";
  let out_shape =
    Array.init r (fun k -> src_shape.(k) + before.(k) + after.(k))
  in
  if Array.exists (fun d -> d < 1) out_shape then
    invalid_arg "Transform.pad: empty result";
  (match mode with
  | Reflect ->
      Array.iteri
        (fun k d ->
          if before.(k) >= d || after.(k) >= d then
            invalid_arg "Transform.pad: reflect pad >= dim")
        src_shape
  | Constant _ | Replicate -> ());
  let fill = match mode with Constant v -> v | Reflect | Replicate -> 0. in
  let f i =
    let oidx = Shape.unravel out_shape i in
    let sidx = Array.make r 0 in
    let inside = ref true in
    for k = 0 to r - 1 do
      let j = oidx.(k) - before.(k) in
      let d = src_shape.(k) in
      if j >= 0 && j < d then sidx.(k) <- j
      else begin
        match mode with
        | Constant _ -> inside := false
        | Reflect -> sidx.(k) <- reflect_index d j
        | Replicate -> sidx.(k) <- max 0 (min (d - 1) j)
      end
    done;
    if !inside then Shape.ravel src_shape sidx else -1
  in
  (out_shape, fill, f)

let pad t ~before ~after ~mode =
  let out_shape, fill, f = pad_spec t.Nd.shape ~before ~after ~mode in
  gather t out_shape ~fill (fun i ->
      match f i with -1 -> Fill | j -> Src j)

let pad_map src_shape ~before ~after ~mode =
  let out_shape, fill, f = pad_spec src_shape ~before ~after ~mode in
  (out_shape, Array.init (Shape.numel out_shape) f, fill)

(* Shared geometry behind [concat] and the plan-compiled map: maps an output
   position to (part index, offset within that part). *)
let concat_spec ~axis shapes =
  match shapes with
  | [] -> invalid_arg "Transform.concat: empty list"
  | (first : Shape.t) :: _ ->
      let r = Array.length first in
      if axis < 0 || axis >= r then invalid_arg "Transform.concat: bad axis";
      List.iter
        (fun (s : Shape.t) ->
          if Array.length s <> r then
            invalid_arg "Transform.concat: rank or dtype mismatch";
          Array.iteri
            (fun k d ->
              if k <> axis && d <> first.(k) then
                invalid_arg "Transform.concat: non-axis dim mismatch")
            s)
        shapes;
      let axis_total =
        List.fold_left (fun acc (s : Shape.t) -> acc + s.(axis)) 0 shapes
      in
      let out_shape = Array.copy first in
      out_shape.(axis) <- axis_total;
      let parts = Array.of_list shapes in
      let offsets = Array.make (Array.length parts) 0 in
      let running = ref 0 in
      Array.iteri
        (fun pi (s : Shape.t) ->
          offsets.(pi) <- !running;
          running := !running + s.(axis))
        parts;
      let locate j =
        (* which part does axis index [j] fall into *)
        let rec go pi =
          if j < offsets.(pi) + parts.(pi).(axis) then pi else go (pi + 1)
        in
        go 0
      in
      let f i =
        let oidx = Shape.unravel out_shape i in
        let pi = locate oidx.(axis) in
        let sidx = Array.copy oidx in
        sidx.(axis) <- oidx.(axis) - offsets.(pi);
        (pi, Shape.ravel parts.(pi) sidx)
      in
      (out_shape, f)

let concat ~axis ts =
  match ts with
  | [] -> invalid_arg "Transform.concat: empty list"
  | first :: _ ->
      if axis < 0 || axis >= Nd.rank first then
        invalid_arg "Transform.concat: bad axis";
      List.iter
        (fun t ->
          if Nd.rank t <> Nd.rank first || t.Nd.dtype <> first.Nd.dtype then
            invalid_arg "Transform.concat: rank or dtype mismatch")
        ts;
      let out_shape, f =
        concat_spec ~axis (List.map (fun t -> t.Nd.shape) ts)
      in
      let parts = Array.of_list ts in
      let read_part read i =
        let pi, off = f i in
        read parts.(pi) off
      in
      (match first.Nd.dtype with
      | F32 | F64 -> Nd.init_f first.Nd.dtype out_shape (read_part Nd.to_float)
      | I32 | I64 -> Nd.init_i first.Nd.dtype out_shape (read_part Nd.to_int)
      | Bool -> Nd.init_b out_shape (read_part Nd.get_b))

let squeeze t axes =
  let r = Nd.rank t in
  let drop =
    match axes with
    | [] ->
        Array.to_list t.Nd.shape
        |> List.mapi (fun k d -> (k, d))
        |> List.filter_map (fun (k, d) -> if d = 1 then Some k else None)
    | _ ->
        List.iter
          (fun a ->
            if a < 0 || a >= r then invalid_arg "Transform.squeeze: bad axis";
            if t.Nd.shape.(a) <> 1 then
              invalid_arg "Transform.squeeze: axis dim <> 1")
          axes;
        axes
  in
  let keep =
    List.init r Fun.id |> List.filter (fun k -> not (List.mem k drop))
  in
  let out_shape = Array.of_list (List.map (fun k -> t.Nd.shape.(k)) keep) in
  reshape t out_shape

let unsqueeze t axis =
  let r = Nd.rank t in
  if axis < 0 || axis > r then invalid_arg "Transform.unsqueeze: bad axis";
  let out_shape =
    Array.init (r + 1) (fun k ->
        if k < axis then t.Nd.shape.(k)
        else if k = axis then 1
        else t.Nd.shape.(k - 1))
  in
  reshape t out_shape

let flatten t ~axis =
  let r = Nd.rank t in
  if axis < 0 || axis > r then invalid_arg "Transform.flatten: bad axis";
  let lead = ref 1 and tail = ref 1 in
  Array.iteri (fun k d -> if k < axis then lead := !lead * d else tail := !tail * d)
    t.Nd.shape;
  reshape t [| !lead; !tail |]

let expand t dst = Nd.broadcast_to t dst
