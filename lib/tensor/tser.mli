(** Textual serialization of tensors and leaf bindings — the input/weight
    half of an on-disk reproducer (the graph half is [Nnsmith_ir.Serial]).
    Floats are encoded in hex so every value round-trips bit-for-bit; NaN
    and the infinities use the fixed spellings [nan] / [inf] / [-inf] and
    decode to the canonical [Float] values. *)

exception Parse_error of string

val encode_tensor : Nd.t -> string
(** One tensor as ["dtype[d0xd1x...] e0 e1 ..."] (no trailing newline).
    Float elements in hex, ints in decimal, bools as [t]/[f]. *)

val parse_tensor : string -> Nd.t
(** Inverse of {!encode_tensor}.  @raise Parse_error on malformed input. *)

val encode_binding : (int * Nd.t) list -> string
(** A leaf binding as one ["tensor <leaf-id> <tensor>"] line per entry, in
    list order. *)

val parse_binding : string -> (int * Nd.t) list
(** Inverse of {!encode_binding}; blank lines are ignored.
    @raise Parse_error on malformed input. *)

val save_binding : string -> (int * Nd.t) list -> unit
val load_binding : string -> (int * Nd.t) list
