(** The seeded-bug registry.

    We cannot re-find the paper's 72 bugs in software we do not have, so each
    bug class from §5.4 is modelled as a *seeded defect* injected into the
    pass code of the simulated compilers (guarded by [enabled]); the bug
    study (Table 3) then measures which generator designs can trigger which
    classes, mirroring the paper's analysis that 49 of 72 bugs are out of
    reach for LEMON/GraphFuzzer.

    Compilers raise {!Compiler_bug} for crash defects; semantic defects
    silently corrupt results and are caught by differential testing. *)

type category = Transformation | Conversion | Unclassified
type effect = Crash | Semantic

type bug = {
  b_id : string;  (** unique key, prefixed by system: "oxrt.", "lotus."... *)
  system : string;  (** "OxRT" | "Lotus" | "TRT" | "Exporter" *)
  category : category;
  effect : effect;
  description : string;
}

exception Compiler_bug of string
(** Raised by a compiler when a seeded crash defect fires; the message is
    the dedup key, as in the paper's unique-crash counting. *)

let bug b_id system category effect description =
  { b_id; system; category; effect; description }

let catalogue : bug list =
  [
    (* ---- OxRT: pattern-directed graph optimizer (ONNXRuntime analogue) *)
    bug "oxrt.fuse_matmul_scale_1x1" "OxRT" Transformation Crash
      "FuseMatMulScale mistakes a 1x1 matrix for a scalar and rewrites \
       (sa*A)@(sb*B) illegally";
    bug "oxrt.fuse_relu_clip_f64" "OxRT" Transformation Semantic
      "Relu-Clip fusion on f64 drops the lower clip bound \
       (shape-preserving; reachable by all generators)";
    bug "oxrt.fuse_bias_softmax_axis" "OxRT" Transformation Semantic
      "BiasSoftmax fusion mishandles a broadcast bias of lower rank";
    bug "oxrt.transpose_pushdown_perm" "OxRT" Transformation Crash
      "Transpose pushdown composes the wrong permutation through a \
       broadcasting binary operator";
    bug "oxrt.cse_ignores_attrs" "OxRT" Transformation Semantic
      "CSE merges Slice nodes that differ only in their start attribute";
    bug "oxrt.constant_fold_pow" "OxRT" Transformation Crash
      "Constant folding of Pow overflows and asserts instead of \
       materialising infinity";
    bug "oxrt.identity_add_zero_broadcast" "OxRT" Transformation Crash
      "Add-zero elimination removes an Add whose zero operand broadcast- \
       expands the result shape (the paper's M0 pattern)";
    bug "oxrt.fuse_pad_conv_negative" "OxRT" Transformation Crash
      "Pad-into-Conv folding accepts negative padding, producing an \
       invalid convolution";
    bug "oxrt.gemm_fuse_scalar_bias" "OxRT" Transformation Crash
      "MatMul+Add fusion into Gemm crashes on a rank-0 bias";
    bug "oxrt.avgpool_include_pad" "OxRT" Transformation Semantic
      "Optimized AveragePool divides by the full window even over padding";
    bug "oxrt.where_const_cond_fold" "OxRT" Unclassified Crash
      "Folding Where with a constant condition ignores the shape \
       contribution of the dropped branch";
    bug "oxrt.cast_chain_wrap" "OxRT" Unclassified Semantic
      "Cast-chain elimination drops the int32 wrap of f->i32->f chains";
    (* ---- Lotus: two-level compiler (TVM analogue) *)
    bug "lotus.layout_nchw4c_broadcast" "Lotus" Transformation Crash
      "NCHW4c layout packing crashes when Conv2d feeds a broadcasting Add \
       with a lower-rank operand";
    bug "lotus.layout_nchw4c_squeeze" "Lotus" Transformation Crash
      "NCHW4c layout packing crashes when Conv2d feeds Squeeze";
    bug "lotus.simplify_div_mul_mod" "Lotus" Transformation Semantic
      "Arithmetic simplifier rewrites floor(a/i)*i to a under mod, \
       reordering division and multiplication incorrectly";
    bug "lotus.int32_shape_overflow" "Lotus" Transformation Crash
      "int32/int64 mismatch in shape arithmetic introduced by \
       shape-attribute operators (Reshape/Expand) with i64 tensors";
    bug "lotus.fuse_injective_reduce" "Lotus" Transformation Crash
      "Operator fusion merges an injective producer into a reduce group \
       and loses the reduced axes";
    bug "lotus.unroll_off_by_one" "Lotus" Transformation Semantic
      "Low-level loop unrolling duplicates the last iteration for small \
       extents";
    bug "lotus.vectorize_tail" "Lotus" Transformation Crash
      "Low-level vectorization asserts on extents not divisible by the \
       vector width";
    bug "lotus.fold_transpose_pair" "Lotus" Transformation Semantic
      "Folding adjacent Transpose nodes composes the permutations in the \
       wrong order";
    bug "lotus.import_where_broadcast" "Lotus" Conversion Crash
      "Where import ignores the lowest-ranked operand during 3-way \
       broadcast shape inference (the paper's Where(C[1x1],T[3x1],F[2]))";
    bug "lotus.import_scalar_reduce" "Lotus" Conversion Crash
      "Importing reduce-like operators that produce a scalar crashes";
    bug "lotus.import_matmul_vec" "Lotus" Conversion Crash
      "MatMul import fails on single-rank (vector) broadcasting operands";
    bug "lotus.import_pad_negative" "Lotus" Conversion Crash
      "ConstPad import rejects negative (cropping) pads with an internal \
       error";
    bug "lotus.import_expand_rank0" "Lotus" Conversion Crash
      "Expand import mishandles rank-0 sources";
    bug "lotus.import_concat3" "Lotus" Conversion Crash
      "Concat import normalises the axis wrongly for 3+ operands";
    (* ---- TRT: closed-source strict profile *)
    bug "trt.clip_i32_attrs" "TRT" Unclassified Semantic
      "Accepts an ill-formed int32 Clip and misinterprets its attributes \
       (paper's data-type mismatch class)";
    bug "trt.sigmoid_f64_precision" "TRT" Transformation Semantic
      "Optimized f64 Sigmoid evaluates in single precision";
    bug "trt.reduce_keepdims_multi" "TRT" Transformation Crash
      "Reduce with keepdims over multiple axes crashes the builder";
    bug "trt.concat_unit_axis0" "TRT" Unclassified Crash
      "Concat on axis 0 with all-unit leading dims crashes";
    (* ---- Exporter: model-export stage (PyTorch exporter analogue) *)
    bug "export.log2_scalar_rank1" "Exporter" Conversion Semantic
      "Exporting Log2 with a scalar input marks the output as rank-1 \
       (the paper's exact by-product bug)";
    bug "export.clip_i32_silent" "Exporter" Conversion Semantic
      "Silently exports Clip at int32, unsupported by the spec";
    bug "export.squeeze_axis0_drop" "Exporter" Conversion Crash
      "Exporting Squeeze drops the axis attribute when it is 0";
  ]

let find b_id = List.find_opt (fun b -> b.b_id = b_id) catalogue

(* Active set: which seeded defects currently fire.  Domain-local so that
   concurrent fuzzing workers can flip fault sets (e.g. the semantic
   attribution re-runs of [Bughunt]) without racing each other; a freshly
   spawned domain starts with no active faults and inherits the parent's
   set explicitly via [active_ids]/[set_active]. *)
let dls : (string, unit) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let active () = Domain.DLS.get dls

let set_active ids =
  let tbl = active () in
  Hashtbl.reset tbl;
  List.iter
    (fun id ->
      if find id = None then invalid_arg ("Faults.set_active: unknown bug " ^ id);
      Hashtbl.replace tbl id ())
    ids

let active_ids () =
  Hashtbl.fold (fun k () acc -> k :: acc) (active ()) [] |> List.sort compare

let activate_all () = set_active (List.map (fun b -> b.b_id) catalogue)
let deactivate_all () = Hashtbl.reset (active ())
let enabled b_id = Hashtbl.mem (active ()) b_id

let with_bugs ids f =
  let saved = active_ids () in
  set_active ids;
  Fun.protect ~finally:(fun () -> set_active saved) f

(** Raise the crash for a seeded defect (stable message = dedup key). *)
let crash b_id detail =
  raise (Compiler_bug (Printf.sprintf "[%s] %s" b_id detail))

let category_name = function
  | Transformation -> "Transformation"
  | Conversion -> "Conversion"
  | Unclassified -> "Unclassified"

let effect_name = function Crash -> "Crash" | Semantic -> "Semantic"
