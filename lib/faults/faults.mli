(** The seeded-bug registry: each bug class from the paper's §5.4 study is
    modelled as an injectable defect in the simulated compilers, guarded by
    {!enabled}.  The bug study (Table 3) measures which generator designs
    can trigger which classes. *)

type category = Transformation | Conversion | Unclassified
type effect = Crash | Semantic

type bug = {
  b_id : string;  (** unique key: "oxrt." / "lotus." / "trt." / "export." *)
  system : string;  (** "OxRT" | "Lotus" | "TRT" | "Exporter" *)
  category : category;
  effect : effect;
  description : string;
}

exception Compiler_bug of string
(** Raised by a compiler when a seeded crash defect fires; the message is
    the dedup key. *)

val catalogue : bug list
val find : string -> bug option

val set_active : string list -> unit
(** Raises [Invalid_argument] on unknown ids.  The active set is
    domain-local: a freshly spawned domain starts with no active faults and
    inherits the parent's set explicitly (see {!active_ids}). *)

val active_ids : unit -> string list
(** The calling domain's active set, sorted — capture before spawning a
    worker, [set_active] inside it. *)

val activate_all : unit -> unit
val deactivate_all : unit -> unit
val enabled : string -> bool

val with_bugs : string list -> (unit -> 'a) -> 'a
(** Run with exactly this active set, restoring the previous one after. *)

val crash : string -> string -> 'a
(** [crash b_id detail] raises {!Compiler_bug} with the canonical
    ["\[b_id\] detail"] message. *)

val category_name : category -> string
val effect_name : effect -> string
