(** Persistent bug-report corpus: the on-disk artefact store that survives a
    fuzzing process.  A {e case} is a directory bundle — the serialized
    graph ([Nnsmith_ir.Serial]), the serialized leaf binding
    ([Nnsmith_tensor.Tser]) and a JSON metadata file — and the corpus root
    keeps an append-only JSONL index keyed by crash dedup-key, so a defect
    seen in {e any} previous run is recognised and only counted, not
    re-saved.  This is the NNSmith report directory (§4): the substrate for
    cross-run triage, regression replay and reduction bookkeeping. *)

module Json = Nnsmith_telemetry.Json
module Tel = Nnsmith_telemetry.Telemetry
module Graph = Nnsmith_ir.Graph
module Op = Nnsmith_ir.Op
module Serial = Nnsmith_ir.Serial
module Nd = Nnsmith_tensor.Nd
module Tser = Nnsmith_tensor.Tser
module Journal = Nnsmith_journal.Journal

exception Corpus_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Corpus_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Schema types                                                        *)

type verdict =
  | Pass
  | Crash of string
  | Semantic of { sem_kind : [ `Optimization | `Frontend ]; rel_err : float }
  | Skipped of string

type reduction = {
  red_attempts : int;
  red_accepted : int;
  red_initial : int;
  red_final : int;
  red_ms : float;
}

type meta = {
  seed : int;
  generator : string;
  system : string;
  verdict : verdict;
  dedup_key : string;
  active_bugs : string list;
  triggered_bugs : string list;
  export_bugs : string list;
  reduction : reduction option;
}

type case = {
  case_id : string;
  graph : Graph.t;
  binding : (int * Nd.t) list;
  meta : meta;
}

let verdict_kind = function
  | Pass -> "pass"
  | Crash _ -> "crash"
  | Semantic _ -> "semantic"
  | Skipped _ -> "skipped"

(* ------------------------------------------------------------------ *)
(* JSON encode/decode (hand-rolled over Telemetry's Json, like the
   telemetry JSONL schema; key order is fixed so files diff cleanly).   *)

let verdict_to_json = function
  | Pass -> Json.Obj [ ("kind", Json.Str "pass") ]
  | Crash m -> Json.Obj [ ("kind", Json.Str "crash"); ("message", Json.Str m) ]
  | Semantic { sem_kind; rel_err } ->
      Json.Obj
        [
          ("kind", Json.Str "semantic");
          ( "sem_kind",
            Json.Str
              (match sem_kind with
              | `Optimization -> "optimization"
              | `Frontend -> "frontend") );
          ("rel_err", Json.Num rel_err);
        ]
  | Skipped r ->
      Json.Obj [ ("kind", Json.Str "skipped"); ("reason", Json.Str r) ]

let str_field j k =
  match Option.bind (Json.member k j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" k)

let ( let* ) = Result.bind

let verdict_of_json j =
  let* kind = str_field j "kind" in
  match kind with
  | "pass" -> Ok Pass
  | "crash" ->
      let* m = str_field j "message" in
      Ok (Crash m)
  | "skipped" ->
      let* r = str_field j "reason" in
      Ok (Skipped r)
  | "semantic" ->
      let* sk = str_field j "sem_kind" in
      let* sem_kind =
        match sk with
        | "optimization" -> Ok `Optimization
        | "frontend" -> Ok `Frontend
        | s -> Error ("bad sem_kind " ^ s)
      in
      let rel_err =
        Option.value ~default:0.
          (Option.bind (Json.member "rel_err" j) Json.to_float)
      in
      Ok (Semantic { sem_kind; rel_err })
  | k -> Error ("unknown verdict kind " ^ k)

let strings_to_json xs = Json.Arr (List.map (fun s -> Json.Str s) xs)

let strings_of_json k j =
  match Json.member k j with
  | Some (Json.Arr xs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Str s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field %S: non-string element" k)
      in
      go [] xs
  | Some _ -> Error (Printf.sprintf "field %S is not an array" k)
  | None -> Ok []

let reduction_to_json r =
  Json.Obj
    [
      ("attempts", Json.Num (float_of_int r.red_attempts));
      ("accepted", Json.Num (float_of_int r.red_accepted));
      ("initial_nodes", Json.Num (float_of_int r.red_initial));
      ("final_nodes", Json.Num (float_of_int r.red_final));
      ("ms", Json.Num r.red_ms);
    ]

let int_field j k =
  match Option.bind (Json.member k j) Json.to_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "missing int field %S" k)

let reduction_of_json j =
  let* red_attempts = int_field j "attempts" in
  let* red_accepted = int_field j "accepted" in
  let* red_initial = int_field j "initial_nodes" in
  let* red_final = int_field j "final_nodes" in
  let red_ms =
    Option.value ~default:0. (Option.bind (Json.member "ms" j) Json.to_float)
  in
  Ok { red_attempts; red_accepted; red_initial; red_final; red_ms }

let meta_to_json (m : meta) =
  Json.Obj
    [
      ("seed", Json.Num (float_of_int m.seed));
      ("generator", Json.Str m.generator);
      ("system", Json.Str m.system);
      ("dedup_key", Json.Str m.dedup_key);
      ("verdict", verdict_to_json m.verdict);
      ("active_bugs", strings_to_json m.active_bugs);
      ("triggered_bugs", strings_to_json m.triggered_bugs);
      ("export_bugs", strings_to_json m.export_bugs);
      ( "reduction",
        match m.reduction with
        | None -> Json.Null
        | Some r -> reduction_to_json r );
    ]

let meta_of_json j : (meta, string) result =
  let* seed = int_field j "seed" in
  let* generator = str_field j "generator" in
  let* system = str_field j "system" in
  let* dedup_key = str_field j "dedup_key" in
  let* verdict =
    match Json.member "verdict" j with
    | Some v -> verdict_of_json v
    | None -> Error "missing verdict"
  in
  let* active_bugs = strings_of_json "active_bugs" j in
  let* triggered_bugs = strings_of_json "triggered_bugs" j in
  let* export_bugs = strings_of_json "export_bugs" j in
  let* reduction =
    match Json.member "reduction" j with
    | None | Some Json.Null -> Ok None
    | Some r ->
        let* r = reduction_of_json r in
        Ok (Some r)
  in
  Ok
    {
      seed;
      generator;
      system;
      verdict;
      dedup_key;
      active_bugs;
      triggered_bugs;
      export_bugs;
      reduction;
    }

(* ------------------------------------------------------------------ *)
(* The corpus handle: directory + in-memory mirror of index.jsonl.     *)

type entry = {
  e_id : string;
  e_key : string;
  e_system : string;
  e_kind : string;
  e_bugs : string list;
  e_nodes : int;
}

type t = {
  dir : string;
  mutable entries : entry list;  (** reverse save order *)
  by_key : (string, entry) Hashtbl.t;
  counts : (string, int) Hashtbl.t;
  first_seen : (string, int) Hashtbl.t;  (** key -> index seq of first hit *)
  last_seen : (string, int) Hashtbl.t;
  mutable seq : int;  (** index records processed (cases and dups) *)
  mutable next : int;
  journal : Journal.t option;
}

let dir t = t.dir
let index_file t = Filename.concat t.dir "index.jsonl"
let cases_dir t = Filename.concat t.dir "cases"
let case_dir t id = Filename.concat (cases_dir t) id

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let bump counts key by =
  Hashtbl.replace counts key
    (by + Option.value ~default:0 (Hashtbl.find_opt counts key))

let entry_to_json e =
  Json.Obj
    [
      ("kind", Json.Str "case");
      ("id", Json.Str e.e_id);
      ("dedup_key", Json.Str e.e_key);
      ("system", Json.Str e.e_system);
      ("verdict", Json.Str e.e_kind);
      ("bugs", strings_to_json e.e_bugs);
      ("nodes", Json.Num (float_of_int e.e_nodes));
    ]

let entry_of_json j =
  let* e_id = str_field j "id" in
  let* e_key = str_field j "dedup_key" in
  let* e_system = str_field j "system" in
  let* e_kind = str_field j "verdict" in
  let* e_bugs = strings_of_json "bugs" j in
  let* e_nodes = int_field j "nodes" in
  Ok { e_id; e_key; e_system; e_kind; e_bugs; e_nodes }

let append_index t json =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (index_file t)
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')

(* One index record (case or dup) for [key] just happened: advance the
   sequence clock and note the key's first/last position on it. *)
let note_seen t key =
  t.seq <- t.seq + 1;
  if not (Hashtbl.mem t.first_seen key) then
    Hashtbl.replace t.first_seen key t.seq;
  Hashtbl.replace t.last_seen key t.seq

let register t e =
  t.entries <- e :: t.entries;
  if not (Hashtbl.mem t.by_key e.e_key) then Hashtbl.replace t.by_key e.e_key e;
  bump t.counts e.e_key 1;
  note_seen t e.e_key;
  t.next <- t.next + 1

let load_index t =
  match open_in (index_file t) with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let lineno = ref 0 in
          try
            while true do
              let line = input_line ic in
              incr lineno;
              if String.trim line <> "" then begin
                let j =
                  match Json.parse line with
                  | Ok j -> j
                  | Error m -> fail "index line %d: %s" !lineno m
                in
                match Option.bind (Json.member "kind" j) Json.to_str with
                | Some "case" -> (
                    match entry_of_json j with
                    | Ok e -> register t e
                    | Error m -> fail "index line %d: %s" !lineno m)
                | Some "dup" -> (
                    match str_field j "dedup_key" with
                    | Ok k ->
                        bump t.counts k 1;
                        note_seen t k
                    | Error m -> fail "index line %d: %s" !lineno m)
                | Some k -> fail "index line %d: unknown kind %S" !lineno k
                | None -> fail "index line %d: missing kind" !lineno
              end
            done
          with End_of_file -> ())

let open_ ?journal dirname =
  mkdir_p (Filename.concat dirname "cases");
  let t =
    {
      dir = dirname;
      entries = [];
      by_key = Hashtbl.create 64;
      counts = Hashtbl.create 64;
      first_seen = Hashtbl.create 64;
      last_seen = Hashtbl.create 64;
      seq = 0;
      next = 1;
      journal;
    }
  in
  load_index t;
  t

let size t = List.length t.entries
let seen t key = Hashtbl.mem t.by_key key
let count t key = Option.value ~default:0 (Hashtbl.find_opt t.counts key)
let case_ids t = List.rev_map (fun e -> e.e_id) t.entries

let find_by_key t key =
  Option.map (fun e -> e.e_id) (Hashtbl.find_opt t.by_key key)

(* ------------------------------------------------------------------ *)
(* Saving                                                              *)

let slug_of_key key =
  let b = Buffer.create 24 in
  String.iter
    (fun c ->
      if Buffer.length b < 24 then
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' ->
            Buffer.add_char b c
        | _ -> Buffer.add_char b '-')
    key;
  if Buffer.length b = 0 then "case" else Buffer.contents b

let journal_bug t ~key ~system ~verdict ~case ~nodes ~is_new ~reducer =
  Option.iter
    (fun j ->
      Journal.emit j
        (Journal.Bug
           {
             b_at_ms = Journal.now_ms ();
             b_key = key;
             b_system = system;
             b_verdict = verdict;
             b_case = case;
             b_nodes = nodes;
             b_count = count t key;
             b_new = is_new;
             b_reducer = reducer;
           }))
    t.journal

let record_duplicate t key =
  match Hashtbl.find_opt t.by_key key with
  | None -> None
  | Some e ->
      bump t.counts key 1;
      note_seen t key;
      append_index t
        (Json.Obj [ ("kind", Json.Str "dup"); ("dedup_key", Json.Str key) ]);
      Tel.incr "corpus/dup_suppressed";
      journal_bug t ~key ~system:e.e_system ~verdict:e.e_kind ~case:e.e_id
        ~nodes:e.e_nodes ~is_new:false ~reducer:None;
      Some e.e_id

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let add t ~graph ~binding ~(meta : meta) =
  Tel.with_span "corpus/save" @@ fun () ->
  match record_duplicate t meta.dedup_key with
  | Some id -> `Duplicate id
  | None ->
      let id = Printf.sprintf "%04d-%s" t.next (slug_of_key meta.dedup_key) in
      let d = case_dir t id in
      mkdir_p d;
      Serial.save (Filename.concat d "graph.nns") graph;
      Tser.save_binding (Filename.concat d "binding.nnt") binding;
      write_file (Filename.concat d "meta.json")
        (Json.to_string (meta_to_json meta) ^ "\n");
      let e =
        {
          e_id = id;
          e_key = meta.dedup_key;
          e_system = meta.system;
          e_kind = verdict_kind meta.verdict;
          e_bugs = meta.triggered_bugs @ meta.export_bugs;
          e_nodes = Graph.size graph;
        }
      in
      append_index t (entry_to_json e);
      register t e;
      Tel.incr "corpus/saved";
      journal_bug t ~key:meta.dedup_key ~system:meta.system
        ~verdict:(verdict_kind meta.verdict) ~case:id ~nodes:e.e_nodes
        ~is_new:true
        ~reducer:
          (Option.map
             (fun (r : reduction) ->
               {
                 Journal.rd_attempts = r.red_attempts;
                 rd_accepted = r.red_accepted;
                 rd_initial = r.red_initial;
                 rd_final = r.red_final;
                 rd_ms = r.red_ms;
               })
             meta.reduction);
      `Saved id

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_case t id =
  let d = case_dir t id in
  let graph =
    try Serial.load (Filename.concat d "graph.nns")
    with Serial.Parse_error m -> fail "case %s: bad graph: %s" id m
  in
  let binding =
    try Tser.load_binding (Filename.concat d "binding.nnt")
    with Tser.Parse_error m -> fail "case %s: bad binding: %s" id m
  in
  let meta =
    match Json.parse (read_file (Filename.concat d "meta.json")) with
    | Error m -> fail "case %s: bad meta.json: %s" id m
    | Ok j -> (
        match meta_of_json j with
        | Ok m -> m
        | Error m -> fail "case %s: bad meta.json: %s" id m)
  in
  { case_id = id; graph; binding; meta }

let load_all t = List.map (load_case t) (case_ids t)

let load_graph t id =
  let d = case_dir t id in
  try Serial.load (Filename.concat d "graph.nns")
  with Serial.Parse_error m -> fail "case %s: bad graph: %s" id m

(* Sorted distinct non-leaf op names — the triage table's shorthand for
   "what kind of model tickles this bug". *)
let op_signature g =
  List.filter_map
    (fun (n : Graph.node) ->
      match n.op with Op.Leaf _ -> None | op -> Some (Op.name op))
    (Graph.nodes g)
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Triage                                                              *)

type triage_row = {
  tr_key : string;
  tr_count : int;
  tr_system : string;
  tr_verdict : string;
  tr_bugs : string list;
  tr_case_id : string;
  tr_nodes : int;
  tr_first : int;
  tr_last : int;
}

let triage t : triage_row list =
  let seen_at tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  List.rev t.entries
  |> List.map (fun e ->
         {
           tr_key = e.e_key;
           tr_count = count t e.e_key;
           tr_system = e.e_system;
           tr_verdict = e.e_kind;
           tr_bugs = e.e_bugs;
           tr_case_id = e.e_id;
           tr_nodes = e.e_nodes;
           tr_first = seen_at t.first_seen e.e_key;
           tr_last = seen_at t.last_seen e.e_key;
         })
  |> List.sort (fun a b ->
         match compare b.tr_count a.tr_count with
         | 0 -> compare a.tr_key b.tr_key
         | c -> c)
