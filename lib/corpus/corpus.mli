(** Persistent bug-report corpus: an on-disk test-case store that survives
    the fuzzing process (the paper's report directory, §4).

    A {e case} is a directory bundle under [<dir>/cases/<id>/]:
    [graph.nns] (via [Nnsmith_ir.Serial]), [binding.nnt] (via
    [Nnsmith_tensor.Tser]) and [meta.json] (seed, generator, system,
    verdict, dedup-key, active/triggered/exporter bug ids, reduction
    stats).  [<dir>/index.jsonl] is an append-only index keyed by crash
    dedup-key: a defect seen in {e any} previous run into the same
    directory is recognised on {!open_} and only counted, not re-saved. *)

exception Corpus_error of string

(** {1 Schema} *)

type verdict =
  | Pass
  | Crash of string  (** the raw crash message *)
  | Semantic of { sem_kind : [ `Optimization | `Frontend ]; rel_err : float }
  | Skipped of string

type reduction = {
  red_attempts : int;
  red_accepted : int;
  red_initial : int;  (** node count before reduction *)
  red_final : int;  (** node count after reduction *)
  red_ms : float;  (** wall time spent reducing *)
}

type meta = {
  seed : int;  (** informational: the seed of the run that found the case *)
  generator : string;
  system : string;  (** [Systems.t] name the verdict was recorded against *)
  verdict : verdict;
  dedup_key : string;
  active_bugs : string list;  (** seeded defects active when recorded *)
  triggered_bugs : string list;  (** seeded bug ids attributed to the case *)
  export_bugs : string list;  (** exporter defect ids that fired on export *)
  reduction : reduction option;  (** [None] when the case was not reduced *)
}

type case = {
  case_id : string;
  graph : Nnsmith_ir.Graph.t;
  binding : (int * Nnsmith_tensor.Nd.t) list;
  meta : meta;
}

val verdict_kind : verdict -> string
(** ["pass" | "crash" | "semantic" | "skipped"]. *)

val verdict_to_json : verdict -> Nnsmith_telemetry.Json.t
val verdict_of_json : Nnsmith_telemetry.Json.t -> (verdict, string) result
val meta_to_json : meta -> Nnsmith_telemetry.Json.t
val meta_of_json : Nnsmith_telemetry.Json.t -> (meta, string) result

(** {1 The store} *)

type t

val open_ : ?journal:Nnsmith_journal.Journal.t -> string -> t
(** Create (or re-open) the corpus rooted at the given directory, loading
    the dedup index of every earlier run.  With [journal], every
    {!add}/{!record_duplicate} also emits a [Bug] journal event (dedup
    key, case id, hit count, reducer stats) — the corpus is the only
    authority on novelty, so bug events originate here.
    @raise Corpus_error on a malformed index. *)

val dir : t -> string
val size : t -> int
(** Distinct saved cases (duplicates are counted, not stored). *)

val seen : t -> string -> bool
(** Whether the dedup-key is already in the corpus (this run or any
    earlier one). *)

val count : t -> string -> int
(** Total hits for a dedup-key, including suppressed duplicates. *)

val find_by_key : t -> string -> string option
(** Case id holding the reproducer for a dedup-key. *)

val add :
  t ->
  graph:Nnsmith_ir.Graph.t ->
  binding:(int * Nnsmith_tensor.Nd.t) list ->
  meta:meta ->
  [ `Saved of string | `Duplicate of string ]
(** Save a case, or — when [meta.dedup_key] is already known — only bump
    its count and append a duplicate marker to the index.  Returns the case
    id that holds the reproducer either way.  Bumps the [corpus/saved] /
    [corpus/dup_suppressed] telemetry counters under a [corpus/save]
    span. *)

val record_duplicate : t -> string -> string option
(** Count one more hit of an already-saved dedup-key without touching the
    case files; [None] when the key is unknown. *)

val case_ids : t -> string list
(** In save order. *)

val load_case : t -> string -> case
(** @raise Corpus_error when any part of the bundle fails to parse. *)

val load_all : t -> case list

val load_graph : t -> string -> Nnsmith_ir.Graph.t
(** The case's graph alone — cheaper than {!load_case} when only the
    structure is needed (e.g. op signatures for triage).
    @raise Corpus_error when the graph fails to parse. *)

val op_signature : Nnsmith_ir.Graph.t -> string list
(** Sorted distinct non-leaf operator names. *)

(** {1 Triage} *)

type triage_row = {
  tr_key : string;
  tr_count : int;
  tr_system : string;
  tr_verdict : string;
  tr_bugs : string list;
  tr_case_id : string;
  tr_nodes : int;
  tr_first : int;  (** index seq (cases + dups, all runs) of the first hit *)
  tr_last : int;  (** …and of the most recent hit *)
}

val triage : t -> triage_row list
(** One row per distinct dedup-key, most-hit first.  The single
    aggregation path over [index.jsonl]: the CLI table and the HTML
    dashboard both consume these rows. *)
