(** The seeded-bug study behind Table 3: run a fuzzer against every system
    with all seeded defects active and record which defects it triggers. *)

type result = {
  fuzzer : string;
  tests : int;
  triggered : (string, int) Hashtbl.t;  (** seeded bug id -> hit count *)
  unique_crashes : (string, int) Hashtbl.t;
      (** crash dedup-key -> count (includes non-seeded rejections) *)
}

val hunt :
  ?journal:Nnsmith_journal.Journal.t ->
  ?report_dir:string ->
  budget_ms:float ->
  Generators.t ->
  result
(** Fuzz for [budget_ms] with every catalogued defect active.  Crash
    verdicts are attributed by their embedded bug id; semantic verdicts are
    attributed by re-running with each candidate semantic defect enabled in
    isolation.  With [report_dir], every crash and semantic mismatch is
    saved to the persistent corpus there via {!Report.save_failure}.  With
    [journal], the run is bracketed by [Start]/[Summary] events and corpus
    saves emit [Bug] events. *)

val attribute_semantic :
  Systems.t ->
  Nnsmith_ir.Graph.t ->
  Nnsmith_ops.Runner.binding ->
  (string, int) Hashtbl.t ->
  unit
(** Attribute a semantic mismatch by re-running with each candidate
    semantic defect enabled in isolation, bumping the triggered table.
    (Also used by the sharded hunt in {!Pfuzz}.) *)

val distribution :
  (string, int) Hashtbl.t ->
  (string * int * int * int * int * int) list
(** Table 3 rows restricted to a triggered set:
    [(system, transformation, conversion, unclassified, crash, semantic)]. *)
