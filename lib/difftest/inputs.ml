(** Test-case input selection, shared by campaigns, reduction and the
    report/replay layer (kept in its own module so those layers do not
    depend on each other). *)

module Runner = Nnsmith_ops.Runner
module Search = Nnsmith_grad.Search
module Tel = Nnsmith_telemetry.Telemetry

(* Inputs for a test case: gradient search with a small budget; fall back to
   the last random binding (still useful for coverage) when it fails.  With
   [max_iters] the budget is an iteration count instead of wall-clock —
   deterministic under any scheduler load, which the sharded campaigns
   (Pfuzz) rely on for jobs-count-independent results. *)
let find_binding ?max_iters rng g =
  Tel.with_span "exec/search" @@ fun () ->
  let budget_ms = if max_iters = None then 16. else infinity in
  match
    (Search.search ~budget_ms ?max_iters ~method_:Search.Gradient rng g).binding
  with
  | Some b -> b
  | None -> Runner.random_binding rng g
