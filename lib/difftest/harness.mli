(** One differential test: reference vs compiled execution, with O0
    re-compilation for fault localisation (§4) and high error tolerance to
    suppress floating-point false alarms (§5.4). *)

type verdict =
  | Pass
  | Crash of string  (** the exception message (see {!dedup_key}) *)
  | Semantic of { sem_kind : [ `Optimization | `Frontend ]; rel_err : float }
      (** outputs disagree with the reference; [`Optimization] iff the O0
          build disagrees with the optimized one *)
  | Skipped of string
      (** the reference produced NaN/Inf — excluded per §2.3 *)

val rtol : float
val atol : float

val message_of_exn : exn -> string

val reference_outputs :
  Nnsmith_ir.Graph.t ->
  Nnsmith_ops.Runner.binding ->
  (int * Nnsmith_tensor.Nd.t) list * bool
(** Reference outputs in [Graph.outputs] order, plus whether any node value
    contained NaN/Inf (the §2.3 exclusion flag).  Uses the graph's compiled
    arena plan when {!Nnsmith_exec.Plan.enabled}, the interpreter otherwise —
    bit-identical either way. *)

val test :
  ?exported:Nnsmith_ir.Graph.t ->
  Systems.t ->
  Nnsmith_ir.Graph.t ->
  Nnsmith_ops.Runner.binding ->
  verdict
(** [test ?exported system g binding]: reference semantics come from the
    pre-export model [g] (the "PyTorch" results); [exported] (default [g])
    is what the compiler receives. *)

val cross_check :
  Systems.t ->
  Systems.t ->
  Nnsmith_ir.Graph.t ->
  Nnsmith_ops.Runner.binding ->
  [ `Agree | `Disagree of float ] option
(** Compiler cross-checking — the alternative oracle design §4 argues
    against.  [None] when either side crashes. *)

val dedup_key : string -> string
(** Crash-dedup key: digits are masked so the same defect reported against
    different nodes counts once. *)

val bug_id_of_message : string -> string option
(** Seeded-bug id from a crash message ("[id] ..."), if the id is in the
    {!Nnsmith_faults.Faults.catalogue}. *)
