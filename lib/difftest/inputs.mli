(** Test-case input selection, shared by campaigns, reduction and the
    report/replay layer. *)

val find_binding :
  ?max_iters:int ->
  Random.State.t ->
  Nnsmith_ir.Graph.t ->
  Nnsmith_ops.Runner.binding
(** A short gradient search, falling back to the last random binding (still
    useful for coverage) when the search fails.  The default budget is
    16 ms of wall clock; [max_iters] switches to an iteration cap — a
    deterministic budget independent of scheduler load, required for
    jobs-count-independent sharded campaigns. *)
