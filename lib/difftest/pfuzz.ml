(** Parallel fuzzing drivers: the campaign loops of {!Campaign} and
    {!Bughunt} re-expressed over {!Nnsmith_parallel.Pool} so a run can
    shard its test stream across worker domains.

    The NNSmith pipeline here is {e index-pure}: test [i] is generated
    from [Splitmix.derive ~root ~index:i] alone (model seed and
    input-search rng both), so under a [Tests n] budget the same root
    seed produces the same failures for any [--jobs] value.  Baseline
    generators (GraphFuzzer, LEMON) are stateful streams; parallel runs
    give each worker an independently seeded stream instead, which is
    reproducible per (root, jobs) but not jobs-independent. *)

module Graph = Nnsmith_ir.Graph
module Config = Nnsmith_core.Config
module Gen = Nnsmith_core.Gen
module Cov = Nnsmith_coverage.Coverage
module Tel = Nnsmith_telemetry.Telemetry
module Pool = Nnsmith_parallel.Pool
module Splitmix = Nnsmith_parallel.Splitmix
module Corpus = Nnsmith_corpus.Corpus

let incr_count tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let merge_counts ~into src =
  Hashtbl.iter
    (fun k n ->
      Hashtbl.replace into k (n + Option.value ~default:0 (Hashtbl.find_opt into k)))
    src

let sorted_counts tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(** A failure observed by a worker, shipped to the corpus-writer domain. *)
type failure = {
  f_system : Systems.t;
  f_generator : string;
  f_seed : int;
  f_export_bugs : string list;
  f_graph : Graph.t;
  f_binding : Nnsmith_ops.Runner.binding;
  f_verdict : Harness.verdict;
}

(* Per-worker tallies; merged into the run result at join. *)
type tally = {
  verdicts : (string, int) Hashtbl.t;  (* pass/crash/semantic/skipped/gen_fail *)
  crashes : (string, int) Hashtbl.t;  (* crash dedup-key -> count *)
  keys : (string, unit) Hashtbl.t;  (* failure dedup-keys (crash + semantic) *)
  triggered : (string, int) Hashtbl.t;  (* seeded bug id -> hit count *)
}

let fresh_tally () =
  {
    verdicts = Hashtbl.create 8;
    crashes = Hashtbl.create 16;
    keys = Hashtbl.create 16;
    triggered = Hashtbl.create 16;
  }

type result = {
  r_stats : Pool.stats;
  r_verdicts : (string * int) list;
  r_crashes : (string * int) list;
  r_failure_keys : string list;  (** sorted, unique — jobs-independent *)
  r_triggered : (string * int) list;  (** seeded bug id -> hits (hunt only) *)
  r_saved : int;  (** new corpus cases (0 without [report_dir]) *)
  r_dups : int;  (** corpus duplicates (0 without [report_dir]) *)
  r_coverage : Cov.snapshot;  (** union over workers *)
}

(* The single-writer corpus sink, run on the calling domain. *)
let make_sink ?report_dir () =
  let corpus = Option.map Corpus.open_ report_dir in
  let saved = ref 0 and dups = ref 0 in
  let sink (f : failure) =
    Option.iter
      (fun c ->
        match
          Report.save_failure c ~system:f.f_system ~generator:f.f_generator
            ~seed:f.f_seed ~export_bugs:f.f_export_bugs f.f_graph f.f_binding
            f.f_verdict
        with
        | `Saved _ -> incr saved
        | `Duplicate _ -> incr dups
        | `Not_failure -> ())
      corpus
  in
  (sink, saved, dups)

let assemble ~stats ~saved ~dups tallies =
  let total = fresh_tally () in
  List.iter
    (fun t ->
      merge_counts ~into:total.verdicts t.verdicts;
      merge_counts ~into:total.crashes t.crashes;
      merge_counts ~into:total.triggered t.triggered;
      Hashtbl.iter (fun k () -> Hashtbl.replace total.keys k ()) t.keys)
    tallies;
  {
    r_stats = stats;
    r_verdicts = sorted_counts total.verdicts;
    r_crashes = sorted_counts total.crashes;
    r_failure_keys =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) total.keys []);
    r_triggered = sorted_counts total.triggered;
    r_saved = !saved;
    r_dups = !dups;
    r_coverage = Cov.snapshot ();
  }

let record_verdict t (system : Systems.t) ~generator ~seed ~export_bugs g binding
    emit = function
  | Harness.Pass -> incr_count t.verdicts "pass"
  | Harness.Skipped _ -> incr_count t.verdicts "skipped"
  | Harness.Semantic _ as v ->
      incr_count t.verdicts "semantic";
      (match Report.failure_key system v with
      | Some k -> Hashtbl.replace t.keys k ()
      | None -> ());
      emit
        {
          f_system = system;
          f_generator = generator;
          f_seed = seed;
          f_export_bugs = export_bugs;
          f_graph = g;
          f_binding = binding;
          f_verdict = v;
        }
  | Harness.Crash m as v ->
      incr_count t.verdicts "crash";
      let key = Harness.dedup_key m in
      incr_count t.crashes key;
      Hashtbl.replace t.keys key ();
      (match Harness.bug_id_of_message m with
      | Some id -> incr_count t.triggered id
      | None -> ());
      emit
        {
          f_system = system;
          f_generator = generator;
          f_seed = seed;
          f_export_bugs = export_bugs;
          f_graph = g;
          f_binding = binding;
          f_verdict = v;
        }

(* The input search must be iteration-capped, not wall-clock-capped: on a
   loaded machine a time budget buys fewer iterations, which would make
   results depend on how many sibling domains are running. *)
let search_iters = 64

(* The index-pure NNSmith pipeline: generate → search inputs → export →
   difftest each system.  Everything derives from [seed]. *)
let run_index t ~generator ~max_nodes ~binning ~systems ~seed =
  let out = ref [] in
  let emit f = out := f :: !out in
  (match
     Gen.generate { Config.default with seed; max_nodes; binning }
   with
  | exception _ -> incr_count t.verdicts "gen_fail"
  | g -> (
      match
        let rng = Random.State.make [| seed |] in
        let binding = Inputs.find_binding ~max_iters:search_iters rng g in
        let exported, export_bugs = Exporter.export g in
        (binding, exported, export_bugs)
      with
      | exception _ -> incr_count t.verdicts "gen_fail"
      | binding, exported, export_bugs ->
          List.iter (fun id -> incr_count t.triggered id) export_bugs;
          List.iter
            (fun system ->
              match Harness.test ~exported system g binding with
              | v ->
                  record_verdict t system ~generator ~seed ~export_bugs g
                    binding emit v
              | exception _ -> incr_count t.verdicts "error")
            systems));
  List.rev !out

(** Sharded NNSmith differential-testing campaign.  Runs with whatever
    fault set is active on the calling domain (workers inherit it).  With
    [report_dir] each failure is minimized and saved to the persistent
    corpus by the calling domain only. *)
let fuzz ?jobs ?report_dir ?(max_nodes = 10) ?(binning = true)
    ?(systems = Systems.all) ~root_seed ~budget () : result =
  let sink, saved, dups = make_sink ?report_dir () in
  let stats, tallies =
    Pool.run ?jobs ~root_seed ~budget
      ~init:(fun ~worker:_ -> fresh_tally ())
      ~test:(fun t ~index:_ ~seed ->
        run_index t ~generator:"NNSmith" ~max_nodes ~binning ~systems ~seed)
      ~finish:(fun t -> t)
      ~sink ()
  in
  assemble ~stats ~saved ~dups tallies

(** Sharded coverage campaign of a stateful generator stream against one
    system: worker [w] drives [gen_of_seed s_w] with an independent
    derived seed.  Worker coverage tables are unioned into the calling
    domain at join; the returned snapshot is the union. *)
let coverage ?jobs ?report_dir ~(system : Systems.t) ~root_seed ~budget
    ~(gen_of_seed : int -> Generators.t) () : result =
  Cov.reset ();
  let sink, saved, dups = make_sink ?report_dir () in
  let stats, tallies =
    Pool.run ?jobs ~root_seed ~budget
      ~init:(fun ~worker ->
        (* Negative index space: disjoint from the test-seed derivations. *)
        let s = Splitmix.derive ~root:root_seed ~index:(-1 - worker) in
        (gen_of_seed s, fresh_tally ()))
      ~test:(fun (gen, t) ~index:_ ~seed ->
        let out = ref [] in
        let emit f = out := f :: !out in
        (match gen.Generators.next () with
        | None -> incr_count t.verdicts "gen_fail"
        | Some g -> (
            match
              let rng = Random.State.make [| seed |] in
              Inputs.find_binding ~max_iters:search_iters rng g
            with
            | exception _ -> incr_count t.verdicts "gen_fail"
            | binding -> (
                match Harness.test system g binding with
                | v ->
                    record_verdict t system ~generator:gen.Generators.g_name
                      ~seed ~export_bugs:[] g binding emit v
                | exception _ -> incr_count t.verdicts "error")));
        List.rev !out)
      ~finish:(fun (_, t) -> t)
      ~sink ()
  in
  assemble ~stats ~saved ~dups tallies

(** Sharded seeded-bug hunt: the index-pure NNSmith pipeline with every
    catalogued defect active in each worker, tallying which defects were
    triggered (crashes attribute by message; semantic mismatches by
    isolation re-runs, as in {!Bughunt}). *)
let hunt ?jobs ?report_dir ?(max_nodes = 10) ~root_seed ~budget () : result =
  let module Faults = Nnsmith_faults.Faults in
  let all_ids = List.map (fun (b : Faults.bug) -> b.b_id) Faults.catalogue in
  let sink, saved, dups = make_sink ?report_dir () in
  Faults.with_bugs all_ids (fun () ->
      let stats, tallies =
        Pool.run ?jobs ~root_seed ~budget
          ~init:(fun ~worker:_ -> fresh_tally ())
          ~test:(fun t ~index:_ ~seed ->
            let fs =
              run_index t ~generator:"NNSmith" ~max_nodes ~binning:true
                ~systems:Systems.all ~seed
            in
            List.iter
              (fun f ->
                match f.f_verdict with
                | Harness.Semantic _ ->
                    Bughunt.attribute_semantic f.f_system f.f_graph f.f_binding
                      t.triggered
                | _ -> ())
              fs;
            fs)
          ~finish:(fun t -> t)
          ~sink ()
      in
      assemble ~stats ~saved ~dups tallies)
