(** Parallel fuzzing drivers: the campaign loops of {!Campaign} and
    {!Bughunt} re-expressed over {!Nnsmith_parallel.Pool} so a run can
    shard its test stream across worker domains.

    The NNSmith pipeline here is {e index-pure}: test [i] is generated
    from [Splitmix.derive ~root ~index:i] alone (model seed and
    input-search rng both), so under a [Tests n] budget the same root
    seed produces the same failures for any [--jobs] value.  Baseline
    generators (GraphFuzzer, LEMON) are stateful streams; parallel runs
    give each worker an independently seeded stream instead, which is
    reproducible per (root, jobs) but not jobs-independent. *)

module Graph = Nnsmith_ir.Graph
module Op = Nnsmith_ir.Op
module Config = Nnsmith_core.Config
module Gen = Nnsmith_core.Gen
module Cov = Nnsmith_coverage.Coverage
module Tel = Nnsmith_telemetry.Telemetry
module Solver = Nnsmith_smt.Solver
module Pool = Nnsmith_parallel.Pool
module Splitmix = Nnsmith_parallel.Splitmix
module Corpus = Nnsmith_corpus.Corpus
module Journal = Nnsmith_journal.Journal

let incr_count tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let merge_counts ~into src =
  Hashtbl.iter
    (fun k n ->
      Hashtbl.replace into k (n + Option.value ~default:0 (Hashtbl.find_opt into k)))
    src

let sorted_counts tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(** A failure observed by a worker, shipped to the corpus-writer domain. *)
type failure = {
  f_system : Systems.t;
  f_generator : string;
  f_seed : int;
  f_export_bugs : string list;
  f_graph : Graph.t;
  f_binding : Nnsmith_ops.Runner.binding;
  f_verdict : Harness.verdict;
}

(** A worker-to-writer channel message: a failure tagged with its global
    test index (must never be lost), a per-index completion marker
    (likewise durable — the sink's ordering depends on it), or a
    best-effort journal event (heartbeats). *)
type msg =
  | M_failure of int * failure
  | M_event of Journal.event
  | M_done of int

let is_failure = function M_failure _ -> true | M_event _ | M_done _ -> false

(* Failures and completion markers must survive channel saturation;
   only heartbeat events are droppable. *)
let is_durable = function M_event _ -> false | M_failure _ | M_done _ -> true

(* Per-worker tallies; merged into the run result at join. *)
type tally = {
  verdicts : (string, int) Hashtbl.t;  (* pass/crash/semantic/skipped/gen_fail *)
  crashes : (string, int) Hashtbl.t;  (* crash dedup-key -> count *)
  keys : (string, unit) Hashtbl.t;  (* failure dedup-keys (crash + semantic) *)
  triggered : (string, int) Hashtbl.t;  (* seeded bug id -> hit count *)
  ops : (string, (string, int) Hashtbl.t) Hashtbl.t;
      (* op kind -> verdict kind -> count (one per op occurrence per test) *)
}

let fresh_tally () =
  {
    verdicts = Hashtbl.create 8;
    crashes = Hashtbl.create 16;
    keys = Hashtbl.create 16;
    triggered = Hashtbl.create 16;
    ops = Hashtbl.create 32;
  }

let record_ops t g verdict_kind =
  List.iter
    (fun (n : Graph.node) ->
      match n.op with
      | Op.Leaf _ -> ()
      | op ->
          let name = Op.name op in
          let inner =
            match Hashtbl.find_opt t.ops name with
            | Some h -> h
            | None ->
                let h = Hashtbl.create 4 in
                Hashtbl.replace t.ops name h;
                h
          in
          incr_count inner verdict_kind)
    (Graph.nodes g)

(* Worker-side campaign state: the tally plus the heartbeat clock. *)
type wstate = {
  w_id : int;
  w_tally : tally;
  mutable w_tests : int;
  mutable w_seq : int;
  mutable w_next_hb : float;
}

let fresh_wstate worker =
  {
    w_id = worker;
    w_tally = fresh_tally ();
    w_tests = 0;
    w_seq = 0;
    w_next_hb = neg_infinity;
  }

let heartbeat_interval_ms = 250.

(* Called once per test on the worker domain.  When journaling, rate-limit
   a heartbeat event carrying this worker's cumulative counters plus its
   domain-local coverage and solver-cache state. *)
let maybe_heartbeat ~journaling ws =
  ws.w_tests <- ws.w_tests + 1;
  if not journaling then []
  else
    let now = Tel.now_ms () in
    if now < ws.w_next_hb then []
    else begin
      ws.w_next_hb <- now +. heartbeat_interval_ms;
      ws.w_seq <- ws.w_seq + 1;
      let snap = Cov.snapshot () in
      let cs = Solver.cache_stats () in
      [
        M_event
          (Journal.Heartbeat
             {
               h_worker = ws.w_id;
               h_seq = ws.w_seq;
               h_at_ms = now;
               h_tests = ws.w_tests;
               h_verdicts = sorted_counts ws.w_tally.verdicts;
               h_cov_total = Cov.count snap;
               h_cov_pass = Cov.count_pass snap;
               h_cov_universe = Cov.universe_size ();
               h_cache_hits = cs.Solver.cs_hits;
               h_cache_misses = cs.Solver.cs_misses;
             });
      ]
    end

type result = {
  r_stats : Pool.stats;
  r_verdicts : (string * int) list;
  r_crashes : (string * int) list;
  r_failure_keys : string list;  (** sorted, unique — jobs-independent *)
  r_triggered : (string * int) list;  (** seeded bug id -> hits (hunt only) *)
  r_ops : (string * (string * int) list) list;
      (** op kind -> verdict kind -> count, both levels sorted *)
  r_saved : int;  (** new corpus cases (0 without [report_dir]) *)
  r_dups : int;  (** corpus duplicates (0 without [report_dir]) *)
  r_coverage : Cov.snapshot;  (** union over workers *)
}

let verdict_name = function
  | Harness.Pass -> "pass"
  | Harness.Skipped _ -> "skipped"
  | Harness.Semantic _ -> "semantic"
  | Harness.Crash _ -> "crash"

(* The single-writer corpus/journal sink, run on the calling domain.
   Bug journal events originate in the corpus (the authority on novelty);
   when journaling without a corpus, a local dedup table stands in so the
   journal still records first-vs-repeat.

   Failures are applied in ascending test-index order, not arrival order:
   with [jobs > 1] the worker domains' messages interleave
   nondeterministically on the shared channel, and arrival-order corpus
   writes would make index.jsonl (and which duplicate arrives first)
   depend on the schedule.  Each worker's failures for index [i] precede
   its [M_done i] marker (the channel is FIFO per producer), so buffering
   until the next expected index is marked done replays the exact
   jobs-independent order — the same discipline the multi-process fleet
   applies to its per-index outcomes. *)
let make_sink ?journal ?report_dir () =
  let corpus = Option.map (fun d -> Corpus.open_ ?journal d) report_dir in
  let saved = ref 0 and dups = ref 0 in
  let jemit ev = Option.iter (fun j -> Journal.emit j ev) journal in
  let seen = Hashtbl.create 16 in
  let handle_failure f =
    match corpus with
    | Some c -> (
        match
          Report.save_failure c ~system:f.f_system ~generator:f.f_generator
            ~seed:f.f_seed ~export_bugs:f.f_export_bugs f.f_graph f.f_binding
            f.f_verdict
        with
        | `Saved _ -> incr saved
        | `Duplicate _ -> incr dups
        | `Not_failure -> ())
    | None -> (
        match Report.failure_key f.f_system f.f_verdict with
        | None -> ()
        | Some key ->
            let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen key) in
            Hashtbl.replace seen key n;
            jemit
              (Journal.Bug
                 {
                   b_at_ms = Journal.now_ms ();
                   b_key = key;
                   b_system = f.f_system.Systems.s_name;
                   b_verdict = verdict_name f.f_verdict;
                   b_case = "";
                   b_nodes = Graph.size f.f_graph;
                   b_count = n;
                   b_new = n = 1;
                   b_reducer = None;
                 }))
  in
  let buf : (int, failure list) Hashtbl.t = Hashtbl.create 64 in
  let finished : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let apply_index i =
    match Hashtbl.find_opt buf i with
    | None -> ()
    | Some rev_fs ->
        Hashtbl.remove buf i;
        List.iter handle_failure (List.rev rev_fs)
  in
  let advance () =
    while Hashtbl.mem finished !next do
      Hashtbl.remove finished !next;
      apply_index !next;
      incr next
    done
  in
  let sink = function
    | M_event ev -> jemit ev
    | M_failure (i, f) ->
        Hashtbl.replace buf i
          (f :: Option.value ~default:[] (Hashtbl.find_opt buf i))
    | M_done i ->
        Hashtbl.replace finished i ();
        advance ()
  in
  (* Time budgets can leave index gaps (a worker hit its deadline before
     reaching an index a faster worker passed); drain whatever is still
     buffered in ascending index order.  Call after [Pool.run] returns —
     the writer domain has been joined, so the buffers are safe to read. *)
  let flush () =
    Hashtbl.fold (fun i _ acc -> i :: acc) buf []
    |> List.sort compare
    |> List.iter apply_index;
    Hashtbl.reset finished;
    next := 0
  in
  (sink, flush, saved, dups)

let assemble ~stats ~saved ~dups tallies =
  let total = fresh_tally () in
  List.iter
    (fun t ->
      merge_counts ~into:total.verdicts t.verdicts;
      merge_counts ~into:total.crashes t.crashes;
      merge_counts ~into:total.triggered t.triggered;
      Hashtbl.iter (fun k () -> Hashtbl.replace total.keys k ()) t.keys;
      Hashtbl.iter
        (fun op inner ->
          let into =
            match Hashtbl.find_opt total.ops op with
            | Some h -> h
            | None ->
                let h = Hashtbl.create 4 in
                Hashtbl.replace total.ops op h;
                h
          in
          merge_counts ~into inner)
        t.ops)
    tallies;
  {
    r_stats = stats;
    r_verdicts = sorted_counts total.verdicts;
    r_crashes = sorted_counts total.crashes;
    r_failure_keys =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) total.keys []);
    r_triggered = sorted_counts total.triggered;
    r_ops =
      Hashtbl.fold (fun op inner acc -> (op, sorted_counts inner) :: acc)
        total.ops []
      |> List.sort compare;
    r_saved = !saved;
    r_dups = !dups;
    r_coverage = Cov.snapshot ();
  }

(* Campaign-lifecycle journal records, emitted on the calling domain. *)

let pool_budget_to_journal = function
  | Pool.Tests n -> Journal.B_tests n
  | Pool.Time_ms m -> Journal.B_time_ms m

let journal_start ?journal ~kind ~systems ~generator ~root_seed ~jobs ~budget
    () =
  Option.iter
    (fun j ->
      Journal.emit j
        (Journal.Start
           {
             s_at_ms = Journal.now_ms ();
             s_kind = kind;
             s_systems = List.map (fun s -> s.Systems.s_name) systems;
             s_generator = generator;
             s_root_seed = root_seed;
             s_jobs = jobs;
             s_budget = pool_budget_to_journal budget;
           }))
    journal

let journal_finish ?journal (r : result) =
  Option.iter
    (fun j ->
      let now = Journal.now_ms () in
      if r.r_ops <> [] then
        Journal.emit j (Journal.Op_stats { o_at_ms = now; o_ops = r.r_ops });
      Journal.emit j
        (Journal.Coverage
           {
             c_at_ms = now;
             c_tests = r.r_stats.Pool.st_tests;
             c_total = Cov.count r.r_coverage;
             c_pass = Cov.count_pass r.r_coverage;
           });
      if r.r_stats.Pool.st_dropped > 0 then begin
        Tel.incr "journal/dropped" ~by:r.r_stats.Pool.st_dropped;
        Journal.emit j
          (Journal.Dropped
             { d_at_ms = now; d_count = r.r_stats.Pool.st_dropped })
      end;
      Journal.emit j
        (Journal.Summary
           {
             f_at_ms = now;
             f_tests = r.r_stats.Pool.st_tests;
             f_tests_per_sec = r.r_stats.Pool.st_tests_per_sec;
             f_verdicts = r.r_verdicts;
             f_failures = List.length r.r_failure_keys;
             f_saved = r.r_saved;
             f_dups = r.r_dups;
             f_cov_total = Cov.count r.r_coverage;
             f_cov_pass = Cov.count_pass r.r_coverage;
             f_dropped = r.r_stats.Pool.st_dropped;
           }))
    journal

let resolved_jobs jobs =
  max 1 (match jobs with Some j -> j | None -> Pool.default_jobs ())

let record_verdict t (system : Systems.t) ~generator ~seed ~export_bugs g binding
    emit = function
  | Harness.Pass ->
      incr_count t.verdicts "pass";
      record_ops t g "pass"
  | Harness.Skipped _ ->
      incr_count t.verdicts "skipped";
      record_ops t g "skipped"
  | Harness.Semantic _ as v ->
      incr_count t.verdicts "semantic";
      record_ops t g "semantic";
      (match Report.failure_key system v with
      | Some k -> Hashtbl.replace t.keys k ()
      | None -> ());
      emit
        {
          f_system = system;
          f_generator = generator;
          f_seed = seed;
          f_export_bugs = export_bugs;
          f_graph = g;
          f_binding = binding;
          f_verdict = v;
        }
  | Harness.Crash m as v ->
      incr_count t.verdicts "crash";
      record_ops t g "crash";
      let key = Harness.dedup_key m in
      incr_count t.crashes key;
      Hashtbl.replace t.keys key ();
      (match Harness.bug_id_of_message m with
      | Some id -> incr_count t.triggered id
      | None -> ());
      emit
        {
          f_system = system;
          f_generator = generator;
          f_seed = seed;
          f_export_bugs = export_bugs;
          f_graph = g;
          f_binding = binding;
          f_verdict = v;
        }

(* The input search must be iteration-capped, not wall-clock-capped: on a
   loaded machine a time budget buys fewer iterations, which would make
   results depend on how many sibling domains are running. *)
let search_iters = 64

(* The index-pure NNSmith pipeline: generate → search inputs → export →
   difftest each system.  Everything derives from [seed].  With
   [attribute_semantic], semantic mismatches are attributed to seeded
   defects by isolation re-runs (the hunt-mode discipline of {!Bughunt}). *)
let run_index ?(attribute_semantic = false) t ~generator ~max_nodes ~binning
    ~systems ~seed =
  let out = ref [] in
  let emit f = out := f :: !out in
  (match
     Gen.generate { Config.default with seed; max_nodes; binning }
   with
  | exception _ -> incr_count t.verdicts "gen_fail"
  | g -> (
      match
        let rng = Random.State.make [| seed |] in
        let binding = Inputs.find_binding ~max_iters:search_iters rng g in
        let exported, export_bugs = Exporter.export g in
        (binding, exported, export_bugs)
      with
      | exception _ -> incr_count t.verdicts "gen_fail"
      | binding, exported, export_bugs ->
          List.iter (fun id -> incr_count t.triggered id) export_bugs;
          List.iter
            (fun system ->
              match Harness.test ~exported system g binding with
              | v ->
                  record_verdict t system ~generator ~seed ~export_bugs g
                    binding emit v
              | exception _ -> incr_count t.verdicts "error")
            systems));
  let fs = List.rev !out in
  if attribute_semantic then
    List.iter
      (fun f ->
        match f.f_verdict with
        | Harness.Semantic _ ->
            Bughunt.attribute_semantic f.f_system f.f_graph f.f_binding
              t.triggered
        | _ -> ())
      fs;
  fs

(* ------------------------------------------------------------------ *)
(* Per-index outcome: the serializable result of one test, shared by the
   in-process domain pool and the multi-process fleet.  [run_one] is the
   single definition of "run test index i"; a fleet worker ships the
   outcome over its pipe, the supervisor absorbs it exactly as [assemble]
   absorbs worker tallies.                                              *)

type outcome = {
  o_verdicts : (string * int) list;  (** sorted verdict-kind counts *)
  o_crashes : (string * int) list;  (** crash dedup-key -> count *)
  o_keys : string list;  (** failure dedup-keys, sorted *)
  o_triggered : (string * int) list;  (** seeded bug id -> hits *)
  o_ops : (string * (string * int) list) list;
  o_failures : failure list;  (** in emission order *)
}

let outcome_of_tally t fs =
  {
    o_verdicts = sorted_counts t.verdicts;
    o_crashes = sorted_counts t.crashes;
    o_keys =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.keys []);
    o_triggered = sorted_counts t.triggered;
    o_ops =
      Hashtbl.fold (fun op inner acc -> (op, sorted_counts inner) :: acc) t.ops
        []
      |> List.sort compare;
    o_failures = fs;
  }

let run_one ?attribute_semantic ?(generator = "NNSmith") ?(max_nodes = 10)
    ?(binning = true) ~systems ~seed () =
  let t = fresh_tally () in
  let fs =
    run_index ?attribute_semantic t ~generator ~max_nodes ~binning ~systems
      ~seed
  in
  outcome_of_tally t fs

(* Persisting a verdict — journal append, minimization, corpus I/O — is
   the only per-failure work still on the generation path at [jobs = 1];
   when any persistence is configured, stream it through the pool's
   writer domain instead ({!Pool.run}'s [async_sink]).  Without
   persistence the sink is a no-op and the inline path is cheaper. *)
let async_sink_wanted ~journal ~report_dir =
  Option.is_some journal || Option.is_some report_dir

(** Sharded NNSmith differential-testing campaign.  Runs with whatever
    fault set is active on the calling domain (workers inherit it).  With
    [report_dir] each failure is minimized and saved to the persistent
    corpus by the calling domain only. *)
let fuzz ?jobs ?journal ?report_dir ?(max_nodes = 10) ?(binning = true)
    ?(systems = Systems.all) ~root_seed ~budget () : result =
  journal_start ?journal ~kind:"fuzz" ~systems ~generator:"NNSmith"
    ~root_seed ~jobs:(resolved_jobs jobs) ~budget ();
  let sink, flush, saved, dups = make_sink ?journal ?report_dir () in
  let journaling = journal <> None in
  let async_sink = async_sink_wanted ~journal ~report_dir in
  let stats, tallies =
    Pool.run ?jobs ~is_failure ~is_durable ~async_sink ~root_seed ~budget
      ~init:(fun ~worker -> fresh_wstate worker)
      ~test:(fun ws ~index ~seed ->
        let fs =
          run_index ws.w_tally ~generator:"NNSmith" ~max_nodes ~binning
            ~systems ~seed
        in
        List.map (fun f -> M_failure (index, f)) fs
        @ maybe_heartbeat ~journaling ws
        @ [ M_done index ])
      ~finish:(fun ws -> ws.w_tally)
      ~sink ()
  in
  flush ();
  let r = assemble ~stats ~saved ~dups tallies in
  journal_finish ?journal r;
  r

(** Sharded coverage campaign of a stateful generator stream against one
    system: worker [w] drives [gen_of_seed s_w] with an independent
    derived seed.  Worker coverage tables are unioned into the calling
    domain at join; the returned snapshot is the union. *)
let coverage ?jobs ?journal ?report_dir ?(generator = "generator")
    ~(system : Systems.t) ~root_seed ~budget
    ~(gen_of_seed : int -> Generators.t) () : result =
  Cov.reset ();
  journal_start ?journal ~kind:"coverage" ~systems:[ system ] ~generator
    ~root_seed ~jobs:(resolved_jobs jobs) ~budget ();
  let sink, flush, saved, dups = make_sink ?journal ?report_dir () in
  let journaling = journal <> None in
  let async_sink = async_sink_wanted ~journal ~report_dir in
  let stats, tallies =
    Pool.run ?jobs ~is_failure ~is_durable ~async_sink ~root_seed ~budget
      ~init:(fun ~worker ->
        (* Negative index space: disjoint from the test-seed derivations. *)
        let s = Splitmix.derive ~root:root_seed ~index:(-1 - worker) in
        (gen_of_seed s, fresh_wstate worker))
      ~test:(fun (gen, ws) ~index ~seed ->
        let t = ws.w_tally in
        let out = ref [] in
        let emit f = out := M_failure (index, f) :: !out in
        (match gen.Generators.next () with
        | None -> incr_count t.verdicts "gen_fail"
        | Some g -> (
            match
              let rng = Random.State.make [| seed |] in
              Inputs.find_binding ~max_iters:search_iters rng g
            with
            | exception _ -> incr_count t.verdicts "gen_fail"
            | binding -> (
                match Harness.test system g binding with
                | v ->
                    record_verdict t system ~generator:gen.Generators.g_name
                      ~seed ~export_bugs:[] g binding emit v
                | exception _ -> incr_count t.verdicts "error")));
        List.rev_append !out (maybe_heartbeat ~journaling ws)
        @ [ M_done index ])
      ~finish:(fun (_, ws) -> ws.w_tally)
      ~sink ()
  in
  flush ();
  let r = assemble ~stats ~saved ~dups tallies in
  journal_finish ?journal r;
  r

(** Sharded seeded-bug hunt: the index-pure NNSmith pipeline with every
    catalogued defect active in each worker, tallying which defects were
    triggered (crashes attribute by message; semantic mismatches by
    isolation re-runs, as in {!Bughunt}). *)
let hunt ?jobs ?journal ?report_dir ?(max_nodes = 10) ~root_seed ~budget () :
    result =
  let module Faults = Nnsmith_faults.Faults in
  let all_ids = List.map (fun (b : Faults.bug) -> b.b_id) Faults.catalogue in
  journal_start ?journal ~kind:"hunt" ~systems:Systems.all
    ~generator:"NNSmith" ~root_seed ~jobs:(resolved_jobs jobs) ~budget ();
  let sink, flush, saved, dups = make_sink ?journal ?report_dir () in
  let journaling = journal <> None in
  let async_sink = async_sink_wanted ~journal ~report_dir in
  Faults.with_bugs all_ids (fun () ->
      let stats, tallies =
        Pool.run ?jobs ~is_failure ~is_durable ~async_sink ~root_seed ~budget
          ~init:(fun ~worker -> fresh_wstate worker)
          ~test:(fun ws ~index ~seed ->
            let fs =
              run_index ~attribute_semantic:true ws.w_tally
                ~generator:"NNSmith" ~max_nodes ~binning:true
                ~systems:Systems.all ~seed
            in
            List.map (fun f -> M_failure (index, f)) fs
            @ maybe_heartbeat ~journaling ws
            @ [ M_done index ])
          ~finish:(fun ws -> ws.w_tally)
          ~sink ()
      in
      flush ();
      let r = assemble ~stats ~saved ~dups tallies in
      journal_finish ?journal r;
      r)
