(** Parallel fuzzing drivers: {!Campaign}/{!Bughunt}-style loops sharded
    across worker domains via {!Nnsmith_parallel.Pool}.

    The NNSmith pipeline is index-pure — test [i]'s model seed and
    input-search rng derive from [Splitmix.derive ~root ~index:i] alone —
    so with a [Tests n] budget, {!fuzz} and {!hunt} produce the same
    failure set for any [jobs] value.  {!coverage} drives stateful
    baseline generator streams (one independently seeded stream per
    worker): reproducible per (root, jobs), not jobs-independent. *)

type failure = {
  f_system : Systems.t;
  f_generator : string;
  f_seed : int;
  f_export_bugs : string list;
  f_graph : Nnsmith_ir.Graph.t;
  f_binding : Nnsmith_ops.Runner.binding;
  f_verdict : Harness.verdict;
}
(** A failure observed by a worker, shipped over the pool's channel to
    the corpus-writer domain. *)

type msg =
  | M_failure of int * failure
  | M_event of Nnsmith_journal.Journal.event
  | M_done of int
(** What rides the pool's worker-to-writer channel: failures tagged with
    their global test index (never dropped), per-index completion markers
    (also never dropped — the sink applies failures in ascending index
    order so corpus bytes are jobs-independent), and best-effort journal
    events (worker heartbeats). *)

type outcome = {
  o_verdicts : (string * int) list;  (** sorted verdict-kind counts *)
  o_crashes : (string * int) list;  (** crash dedup-key -> count *)
  o_keys : string list;  (** failure dedup-keys, sorted *)
  o_triggered : (string * int) list;  (** seeded bug id -> hits *)
  o_ops : (string * (string * int) list) list;
      (** op kind -> verdict kind -> count, both levels sorted *)
  o_failures : failure list;  (** in emission order *)
}
(** The serializable result of running one test index — what a fleet
    worker ships over its pipe to the supervisor. *)

val run_one :
  ?attribute_semantic:bool ->
  ?generator:string ->
  ?max_nodes:int ->
  ?binning:bool ->
  systems:Systems.t list ->
  seed:int ->
  unit ->
  outcome
(** The single definition of "run test index [i]": the index-pure NNSmith
    pipeline (generate → input search → export → difftest each system)
    for one derived seed, exactly as the pool drivers run it.  With
    [attribute_semantic] (hunt mode), semantic mismatches are attributed
    to seeded defects by isolation re-runs.  Both the in-process domain
    pool and the multi-process fleet are built on this closure. *)

val verdict_name : Harness.verdict -> string
(** ["pass" | "skipped" | "semantic" | "crash"] — the journal/corpus
    verdict-kind vocabulary. *)

type result = {
  r_stats : Nnsmith_parallel.Pool.stats;
  r_verdicts : (string * int) list;
      (** verdict kind (pass/crash/semantic/skipped/gen_fail/error) -> count *)
  r_crashes : (string * int) list;  (** crash dedup-key -> count *)
  r_failure_keys : string list;
      (** sorted unique failure dedup-keys — jobs-independent for the
          index-pure drivers *)
  r_triggered : (string * int) list;  (** seeded bug id -> hits (hunt) *)
  r_ops : (string * (string * int) list) list;
      (** op kind -> verdict kind -> count (per op occurrence per test),
          both levels sorted — jobs-independent for the index-pure
          drivers *)
  r_saved : int;  (** new corpus cases (0 without [report_dir]) *)
  r_dups : int;  (** corpus duplicates (0 without [report_dir]) *)
  r_coverage : Nnsmith_coverage.Coverage.snapshot;  (** union over workers *)
}

(** Each driver, when given [journal], brackets the run with [Start] and
    [Op_stats]/[Coverage]/[Dropped]/[Summary] events, streams per-worker
    [Heartbeat]s (rate-limited on the worker, delivered best-effort), and
    has the corpus emit a [Bug] event per save/duplicate — all written by
    the calling domain only. *)

val fuzz :
  ?jobs:int ->
  ?journal:Nnsmith_journal.Journal.t ->
  ?report_dir:string ->
  ?max_nodes:int ->
  ?binning:bool ->
  ?systems:Systems.t list ->
  root_seed:int ->
  budget:Nnsmith_parallel.Pool.budget ->
  unit ->
  result
(** Sharded NNSmith differential-testing campaign.  Workers inherit the
    fault set active on the calling domain.  With [report_dir], failures
    are minimized and saved to the persistent corpus by the calling
    domain only (single writer). *)

val coverage :
  ?jobs:int ->
  ?journal:Nnsmith_journal.Journal.t ->
  ?report_dir:string ->
  ?generator:string ->
  system:Systems.t ->
  root_seed:int ->
  budget:Nnsmith_parallel.Pool.budget ->
  gen_of_seed:(int -> Generators.t) ->
  unit ->
  result
(** Sharded coverage campaign of a generator stream against one system.
    Resets coverage first; worker hit-tables are unioned into the calling
    domain at join and returned as [r_coverage].  [generator] only labels
    the journal's [Start] event. *)

val hunt :
  ?jobs:int ->
  ?journal:Nnsmith_journal.Journal.t ->
  ?report_dir:string ->
  ?max_nodes:int ->
  root_seed:int ->
  budget:Nnsmith_parallel.Pool.budget ->
  unit ->
  result
(** Sharded seeded-bug hunt: the index-pure pipeline with every
    catalogued defect active; [r_triggered] tallies defect attributions
    (crashes by message id, semantic mismatches by isolation re-runs). *)
