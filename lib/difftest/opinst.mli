(** Unique operator-instance accounting for the binning ablation
    (Figure 9): instances are distinguished by operator, attributes and
    input types. *)

type t

val create : unit -> t

val instance_key : Nnsmith_ir.Graph.t -> Nnsmith_ir.Graph.node -> string

val add : t -> Nnsmith_ir.Graph.t -> int
(** Record all operator instances of a model; returns how many were new. *)

val count : t -> int

val abs_count : t -> int
(** Distinct abstract instances seen: operator name plus input
    (dtype, rank) signature, ignoring attributes and dimension magnitudes.
    This is the key space of the generator's per-op feasibility memo, so
    the ratio [count / abs_count] explains the memo's hit rate.  Each new
    abstract signature also bumps the [cov/abs_sigs] counter. *)
