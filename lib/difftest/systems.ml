(** The compilers under differential test, behind one interface. *)

module Nd = Nnsmith_tensor.Nd
module Graph = Nnsmith_ir.Graph
module Tel = Nnsmith_telemetry.Telemetry

type opt_level = O0 | O2

type t = {
  s_name : string;
  closed_source : bool;  (** excluded from coverage studies, like TensorRT *)
  compile_and_run :
    opt_level -> Graph.t -> (int * Nd.t) list -> (int * Nd.t) list;
      (** May raise {!Nnsmith_faults.Faults.Compiler_bug} or any compiler/
          runtime exception. *)
}

let oxrt =
  {
    s_name = "OxRT";
    closed_source = false;
    compile_and_run =
      (fun opt g binding ->
        let opt_level =
          match opt with
          | O0 -> Nnsmith_ortlike.Compiler.O0
          | O2 -> Nnsmith_ortlike.Compiler.O2
        in
        let c =
          Tel.with_span "exec/compile" (fun () ->
              Nnsmith_ortlike.Compiler.compile ~opt_level g)
        in
        Tel.with_span "exec/run" (fun () ->
            Nnsmith_ortlike.Compiler.run c binding));
  }

let lotus =
  {
    s_name = "Lotus";
    closed_source = false;
    compile_and_run =
      (fun opt g binding ->
        let opt_level =
          match opt with
          | O0 -> Nnsmith_tvmlike.Compiler.O0
          | O2 -> Nnsmith_tvmlike.Compiler.O2
        in
        let c =
          Tel.with_span "exec/compile" (fun () ->
              Nnsmith_tvmlike.Compiler.compile ~opt_level g)
        in
        Tel.with_span "exec/run" (fun () ->
            Nnsmith_tvmlike.Compiler.run c binding));
  }

let trt =
  {
    s_name = "TRT";
    closed_source = true;
    compile_and_run =
      (fun opt g binding ->
        let opt_level =
          match opt with
          | O0 -> Nnsmith_ortlike.Compiler.O0
          | O2 -> Nnsmith_ortlike.Compiler.O2
        in
        let c =
          Tel.with_span "exec/compile" (fun () ->
              Nnsmith_ortlike.Compiler.compile
                ~profile:Nnsmith_ortlike.Compiler.Trt_strict ~opt_level g)
        in
        Tel.with_span "exec/run" (fun () ->
            Nnsmith_ortlike.Compiler.run c binding));
  }

let all = [ oxrt; lotus; trt ]
let open_source = [ oxrt; lotus ]
