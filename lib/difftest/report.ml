(** Bug reporting and replay: the bridge between a live fuzzing loop and
    the persistent {!Nnsmith_corpus.Corpus}.

    Saving minimizes first ({!Reduce.minimize} under a "still fails with the
    same dedup-key" predicate, falling back to the unreduced model when the
    predicate does not reproduce), then stores the exact (graph, binding)
    pair the recorded verdict was computed from — so {!replay_case} is
    deterministic: load, re-activate the recorded fault set, export, test,
    compare. *)

module Graph = Nnsmith_ir.Graph
module Runner = Nnsmith_ops.Runner
module Validate = Nnsmith_ops.Validate
module Faults = Nnsmith_faults.Faults
module Tel = Nnsmith_telemetry.Telemetry
module Corpus = Nnsmith_corpus.Corpus

let corpus_verdict : Harness.verdict -> Corpus.verdict = function
  | Harness.Pass -> Corpus.Pass
  | Harness.Crash m -> Corpus.Crash m
  | Harness.Semantic { sem_kind; rel_err } -> Corpus.Semantic { sem_kind; rel_err }
  | Harness.Skipped r -> Corpus.Skipped r

(** Corpus dedup-key of a failing verdict; [None] for Pass/Skipped.
    Crashes dedup by their digit-masked message (like the paper's
    by-error-message dedup); semantic mismatches carry no message, so they
    dedup by system and localisation kind. *)
let failure_key (system : Systems.t) = function
  | Harness.Crash m -> Some (Harness.dedup_key m)
  | Harness.Semantic { sem_kind; _ } ->
      Some
        (Printf.sprintf "[semantic-%s] %s"
           (match sem_kind with
           | `Optimization -> "optimization"
           | `Frontend -> "frontend")
           system.s_name)
  | Harness.Pass | Harness.Skipped _ -> None

let active_bug_ids () =
  List.filter_map
    (fun (b : Faults.bug) -> if Faults.enabled b.b_id then Some b.b_id else None)
    Faults.catalogue

let triggered_bugs_of = function
  | Harness.Crash m -> Option.to_list (Harness.bug_id_of_message m)
  | _ -> []

(* The canonical probe: the binding is re-derived from an rng seeded by the
   dedup-key with an iteration-capped (load-independent) input search, so
   probing the same graph always yields the same (binding, exported,
   verdict) triple — even while worker domains keep the machine busy. *)
let probe (system : Systems.t) ~reduce_seed g =
  let rng = Random.State.make [| reduce_seed |] in
  let binding = Inputs.find_binding ~max_iters:64 rng g in
  let exported, export_bugs = Exporter.export g in
  match Harness.test ~exported system g binding with
  | v -> Some (binding, export_bugs, v)
  | exception _ -> None

type save_result = [ `Saved of string | `Duplicate of string | `Not_failure ]

(** Save a failing test into the corpus, minimized first.  [binding] and
    [verdict] are what the fuzzing loop observed; when the canonical probe
    reproduces the same dedup-key the model is shrunk with
    {!Reduce.minimize} and the reduced reproducer is saved, otherwise the
    loop's own (graph, binding, verdict) is saved unreduced.  Duplicates
    (by dedup-key, across runs) are only counted. *)
let save_failure corpus ~(system : Systems.t) ~generator ?(seed = 0)
    ?(export_bugs = []) (g : Graph.t) (binding : Runner.binding)
    (verdict : Harness.verdict) : save_result =
  match failure_key system verdict with
  | None -> `Not_failure
  | Some key -> (
      match Corpus.record_duplicate corpus key with
      | Some id -> `Duplicate id
      | None ->
          let reduce_seed = Hashtbl.hash key in
          let reproduces g' =
            match Validate.check g' with
            | Error _ -> false
            | Ok () -> (
                match probe system ~reduce_seed g' with
                | Some (_, _, v) -> failure_key system v = Some key
                | None -> false)
          in
          let t0 = Tel.now_ms () in
          let reduced =
            if reproduces g then
              Some
                (Tel.with_span "corpus/reduce" (fun () ->
                     Reduce.minimize ~predicate:reproduces g))
            else None
          in
          let red_ms = Tel.now_ms () -. t0 in
          Tel.observe "corpus/reduce_ms" red_ms;
          let graph, binding, verdict, export_bugs, reduction =
            match reduced with
            | Some (rg, stats) -> (
                (* deterministic: the probe repeats what minimize accepted *)
                match probe system ~reduce_seed rg with
                | Some (b, fired, v) when failure_key system v = Some key ->
                    ( rg,
                      b,
                      v,
                      fired,
                      Some
                        {
                          Corpus.red_attempts = stats.Reduce.attempts;
                          red_accepted = stats.Reduce.accepted;
                          red_initial = stats.Reduce.initial_size;
                          red_final = stats.Reduce.final_size;
                          red_ms;
                        } )
                | Some _ | None -> (g, binding, verdict, export_bugs, None))
            | None -> (g, binding, verdict, export_bugs, None)
          in
          let meta =
            {
              Corpus.seed;
              generator;
              system = system.s_name;
              verdict = corpus_verdict verdict;
              dedup_key = key;
              active_bugs = active_bug_ids ();
              triggered_bugs = triggered_bugs_of verdict;
              export_bugs;
              reduction;
            }
          in
          (Corpus.add corpus ~graph ~binding ~meta :> save_result))

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type outcome = {
  rp_case : string;
  rp_expected_kind : string;
  rp_got_kind : string;
  rp_expected_key : string;
  rp_got_key : string option;  (** [None] when the re-run did not fail *)
  rp_drift : bool;
  rp_note : string;  (** non-empty when the case could not be re-run *)
}

let system_by_name name =
  List.find_opt (fun (s : Systems.t) -> s.s_name = name) Systems.all

let error_outcome ~case ~expected_kind ~expected_key note =
  {
    rp_case = case;
    rp_expected_kind = expected_kind;
    rp_got_kind = "error";
    rp_expected_key = expected_key;
    rp_got_key = None;
    rp_drift = true;
    rp_note = note;
  }

(** Re-run one saved case against its recorded system, with its recorded
    fault set active, through the exporter — and compare verdict kind and
    dedup-key with what the corpus recorded. *)
let replay_case (c : Corpus.case) : outcome =
  Tel.with_span "corpus/replay" @@ fun () ->
  let expected_kind = Corpus.verdict_kind c.meta.verdict in
  let expected_key = c.meta.dedup_key in
  let out =
    match system_by_name c.meta.system with
    | None ->
        error_outcome ~case:c.case_id ~expected_kind ~expected_key
          (Printf.sprintf "unknown system %S" c.meta.system)
    | Some system -> (
        match
          Faults.with_bugs c.meta.active_bugs (fun () ->
              let exported, _ = Exporter.export c.graph in
              Harness.test ~exported system c.graph c.binding)
        with
        | exception Invalid_argument m ->
            error_outcome ~case:c.case_id ~expected_kind ~expected_key
              ("stale fault set: " ^ m)
        | exception e ->
            error_outcome ~case:c.case_id ~expected_kind ~expected_key
              ("replay raised: " ^ Printexc.to_string e)
        | got ->
            let got_kind = Corpus.verdict_kind (corpus_verdict got) in
            let got_key = failure_key system got in
            let drift =
              got_kind <> expected_kind
              || ((expected_kind = "crash" || expected_kind = "semantic")
                 && got_key <> Some expected_key)
            in
            {
              rp_case = c.case_id;
              rp_expected_kind = expected_kind;
              rp_got_kind = got_kind;
              rp_expected_key = expected_key;
              rp_got_key = got_key;
              rp_drift = drift;
              rp_note = "";
            })
  in
  Tel.incr (if out.rp_drift then "corpus/replay_drift" else "corpus/replay_match");
  out

(** Replay every saved case; cases whose bundle fails to load are reported
    as drift rather than aborting the sweep. *)
let replay (corpus : Corpus.t) : outcome list =
  List.map
    (fun id ->
      match Corpus.load_case corpus id with
      | c -> replay_case c
      | exception Corpus.Corpus_error m ->
          Tel.incr "corpus/replay_drift";
          error_outcome ~case:id ~expected_kind:"?" ~expected_key:"?" m)
    (Corpus.case_ids corpus)
