(** Fuzzing campaigns: time-budgeted loops that generate models, search for
    numerically valid inputs, exercise a compiler, and sample coverage —
    the machinery behind Figures 4–10 (scaled from the paper's 4 hours to
    seconds). *)

type sample = {
  at_ms : float;
  tests : int;
  cov_total : int;
  cov_pass : int;
  extra : int;  (** campaign-specific counter (e.g. unique op instances) *)
}

type result = {
  fuzzer : string;
  system : string;
  samples : sample list;  (** chronological *)
  final : Nnsmith_coverage.Coverage.snapshot;
  tests : int;
  crashes : (string * int) list;  (** crash dedup-key -> count *)
}

val find_binding :
  Random.State.t -> Nnsmith_ir.Graph.t -> Nnsmith_ops.Runner.binding
(** Inputs for a test case: a short gradient search, falling back to the
    last random binding (still useful for coverage). *)

(** {1 Journal plumbing for sequential (single-domain) campaign loops} —
    shared with {!Bughunt}.  All emitters are no-ops on [None]. *)

val journal_start :
  Nnsmith_journal.Journal.t option ->
  kind:string ->
  systems:string list ->
  generator:string ->
  seed:int ->
  budget_ms:float ->
  unit

val coverage_emitter :
  Nnsmith_journal.Journal.t option ->
  tests:int ->
  total:int ->
  pass:int ->
  unit
(** [coverage_emitter journal] is a stateful emitter: call it per test,
    it writes a [Coverage] event at most every ~250 ms. *)

val journal_summary :
  Nnsmith_journal.Journal.t option ->
  elapsed_ms:float ->
  tests:int ->
  verdicts:(string * int) list ->
  failures:int ->
  saved:int ->
  dups:int ->
  cov_total:int ->
  cov_pass:int ->
  unit

val coverage :
  ?journal:Nnsmith_journal.Journal.t ->
  ?report_dir:string ->
  budget_ms:float ->
  system:Systems.t ->
  Generators.t ->
  result
(** One generator against one system; resets global coverage first.  Run
    with seeded faults disabled so crashes don't truncate executions.  With
    [report_dir], every crash and semantic mismatch is saved to the
    persistent corpus there via {!Report.save_failure} (minimized,
    deduplicated across runs).  With [journal], the run is bracketed by
    [Start]/[Summary] events with rate-limited [Coverage] snapshots in
    between, and corpus saves emit [Bug] events. *)

val tzer : ?journal:Nnsmith_journal.Journal.t -> budget_ms:float -> seed:int -> unit -> result
(** The TZer campaign mutates Lotus's low-level IR directly. *)

val op_instances :
  ?journal:Nnsmith_journal.Journal.t -> budget_ms:float -> Generators.t -> result
(** Generation-only campaign counting unique operator instances
    (Figure 9); the count is in each sample's [extra].  Journalled
    [Coverage] events carry the instance count in [c_total]. *)
