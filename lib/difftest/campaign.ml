(** Fuzzing campaigns: time-budgeted loops that generate models, search for
    numerically valid inputs, exercise a compiler, and sample coverage —
    the machinery behind Figures 4–10 (scaled from the paper's 4 hours to
    seconds). *)

module Graph = Nnsmith_ir.Graph
module Runner = Nnsmith_ops.Runner
module Search = Nnsmith_grad.Search
module Cov = Nnsmith_coverage.Coverage
module Tel = Nnsmith_telemetry.Telemetry
module Journal = Nnsmith_journal.Journal

(* One clock for campaigns, search and bench: Telemetry.now_ms. *)
let now_ms = Tel.now_ms

(* Journal plumbing for the sequential loops (single domain: jobs = 1). *)

let jemit journal ev = Option.iter (fun j -> Journal.emit j ev) journal

let journal_start journal ~kind ~systems ~generator ~seed ~budget_ms =
  jemit journal
    (Journal.Start
       {
         s_at_ms = Journal.now_ms ();
         s_kind = kind;
         s_systems = systems;
         s_generator = generator;
         s_root_seed = seed;
         s_jobs = 1;
         s_budget = Journal.B_time_ms budget_ms;
       })

(* Rate-limited Coverage events: the campaign samples every test, the
   journal every ~250 ms. *)
let coverage_emitter journal =
  let next = ref neg_infinity in
  fun ~tests ~total ~pass ->
    Option.iter
      (fun j ->
        let now = Journal.now_ms () in
        if now >= !next then begin
          next := now +. 250.;
          Journal.emit j
            (Journal.Coverage
               { c_at_ms = now; c_tests = tests; c_total = total; c_pass = pass })
        end)
      journal

let journal_summary journal ~elapsed_ms ~tests ~verdicts ~failures ~saved
    ~dups ~cov_total ~cov_pass =
  jemit journal
    (Journal.Summary
       {
         f_at_ms = Journal.now_ms ();
         f_tests = tests;
         f_tests_per_sec =
           float_of_int tests /. Float.max 1e-9 (elapsed_ms /. 1000.);
         f_verdicts = verdicts;
         f_failures = failures;
         f_saved = saved;
         f_dups = dups;
         f_cov_total = cov_total;
         f_cov_pass = cov_pass;
         f_dropped = 0;
       })

type sample = {
  at_ms : float;
  tests : int;
  cov_total : int;
  cov_pass : int;
  extra : int;  (** campaign-specific counter (e.g. unique op instances) *)
}

type result = {
  fuzzer : string;
  system : string;
  samples : sample list;  (** chronological *)
  final : Cov.snapshot;
  tests : int;
  crashes : (string * int) list;  (** dedup message -> count *)
}

let incr_count tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Inputs for a test case: lives in Inputs so that Reduce and Report can
   share it without depending on this module; re-exported here for API
   stability (without the iteration-cap option). *)
let find_binding rng g = Inputs.find_binding rng g

(** Coverage campaign of one generator against one system.  Resets global
    coverage first.  Seeded faults should normally be disabled for coverage
    runs (crashes would truncate executions).  With [report_dir], every
    crash and semantic mismatch is saved to the persistent corpus there
    (minimized, deduplicated across runs). *)
let coverage ?journal ?report_dir ~budget_ms ~(system : Systems.t)
    (gen : Generators.t) : result =
  Cov.reset ();
  Tel.reset ();
  journal_start journal ~kind:"coverage" ~systems:[ system.s_name ]
    ~generator:gen.g_name
    ~seed:(Hashtbl.hash (gen.g_name, system.s_name))
    ~budget_ms;
  let corpus =
    Option.map (fun d -> Nnsmith_corpus.Corpus.open_ ?journal d) report_dir
  in
  let saved = ref 0 and dups = ref 0 in
  let report g binding v =
    Option.iter
      (fun c ->
        match
          Report.save_failure c ~system ~generator:gen.g_name g binding v
        with
        | `Saved _ -> incr saved
        | `Duplicate _ -> incr dups
        | `Not_failure -> ())
      corpus
  in
  let rng = Random.State.make [| Hashtbl.hash (gen.g_name, system.s_name) |] in
  let start = now_ms () in
  let samples = ref [] in
  let crashes = Hashtbl.create 8 in
  let verdicts = Hashtbl.create 8 in
  let tests = ref 0 in
  let emit_coverage = coverage_emitter journal in
  let record () =
    let snap = Cov.snapshot () in
    let total = Cov.count snap and pass = Cov.count_pass snap in
    samples :=
      {
        at_ms = now_ms () -. start;
        tests = !tests;
        cov_total = total;
        cov_pass = pass;
        extra = 0;
      }
      :: !samples;
    emit_coverage ~tests:!tests ~total ~pass
  in
  while now_ms () -. start < budget_ms do
    incr tests;
    (match gen.next () with
    | None -> incr_count verdicts "gen_fail"
    | Some g -> (
        let binding = find_binding rng g in
        match Harness.test system g binding with
        | Harness.Pass -> incr_count verdicts "pass"
        | Skipped _ -> incr_count verdicts "skipped"
        | Harness.Semantic _ as v ->
            incr_count verdicts "semantic";
            report g binding v
        | Harness.Crash m as v ->
            let key = Harness.dedup_key m in
            Tel.incr "exec/crashes";
            Tel.event "crash" key;
            incr_count crashes key;
            incr_count verdicts "crash";
            report g binding v
        | exception _ -> incr_count verdicts "error"));
    record ()
  done;
  let final = Cov.snapshot () in
  journal_summary journal
    ~elapsed_ms:(now_ms () -. start)
    ~tests:!tests
    ~verdicts:
      (List.sort compare
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) verdicts []))
    ~failures:(Hashtbl.length crashes) ~saved:!saved ~dups:!dups
    ~cov_total:(Cov.count final) ~cov_pass:(Cov.count_pass final);
  {
    fuzzer = gen.g_name;
    system = system.s_name;
    samples = List.rev !samples;
    final;
    tests = !tests;
    crashes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) crashes [];
  }

(** TZer campaign: mutates Lotus's low-level IR directly. *)
let tzer ?journal ~budget_ms ~seed () : result =
  Cov.reset ();
  Tel.reset ();
  journal_start journal ~kind:"coverage" ~systems:[ "Lotus" ]
    ~generator:"TZer" ~seed ~budget_ms;
  let st = Nnsmith_baselines.Tzer.create ~seed () in
  let start = now_ms () in
  let samples = ref [] in
  let tests = ref 0 in
  let emit_coverage = coverage_emitter journal in
  while now_ms () -. start < budget_ms do
    incr tests;
    Nnsmith_baselines.Tzer.step st;
    let snap = Cov.snapshot () in
    let total = Cov.count snap and pass = Cov.count_pass snap in
    samples :=
      {
        at_ms = now_ms () -. start;
        tests = !tests;
        cov_total = total;
        cov_pass = pass;
        extra = 0;
      }
      :: !samples;
    emit_coverage ~tests:!tests ~total ~pass
  done;
  let final = Cov.snapshot () in
  journal_summary journal
    ~elapsed_ms:(now_ms () -. start)
    ~tests:!tests ~verdicts:[] ~failures:0 ~saved:0 ~dups:0
    ~cov_total:(Cov.count final) ~cov_pass:(Cov.count_pass final);
  {
    fuzzer = "TZer";
    system = "Lotus";
    samples = List.rev !samples;
    final;
    tests = !tests;
    crashes = [];
  }

(** Unique-operator-instance campaign (Figure 9): generation only. *)
let op_instances ?journal ~budget_ms (gen : Generators.t) : result =
  Tel.reset ();
  journal_start journal ~kind:"op_instances" ~systems:[]
    ~generator:gen.g_name ~seed:0 ~budget_ms;
  let start = now_ms () in
  let samples = ref [] in
  let tests = ref 0 in
  let insts = Opinst.create () in
  (* The "coverage" here is unique op instances, not branch sites. *)
  let emit_coverage = coverage_emitter journal in
  while now_ms () -. start < budget_ms do
    incr tests;
    (match gen.next () with
    | None -> ()
    | Some g -> ignore (Opinst.add insts g));
    samples :=
      {
        at_ms = now_ms () -. start;
        tests = !tests;
        cov_total = 0;
        cov_pass = 0;
        extra = Opinst.count insts;
      }
      :: !samples;
    emit_coverage ~tests:!tests ~total:(Opinst.count insts) ~pass:0
  done;
  journal_summary journal
    ~elapsed_ms:(now_ms () -. start)
    ~tests:!tests ~verdicts:[] ~failures:0 ~saved:0 ~dups:0
    ~cov_total:(Opinst.count insts) ~cov_pass:0;
  {
    fuzzer = gen.g_name;
    system = "-";
    samples = List.rev !samples;
    final = Cov.empty;
    tests = !tests;
    crashes = [];
  }
