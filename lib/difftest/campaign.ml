(** Fuzzing campaigns: time-budgeted loops that generate models, search for
    numerically valid inputs, exercise a compiler, and sample coverage —
    the machinery behind Figures 4–10 (scaled from the paper's 4 hours to
    seconds). *)

module Graph = Nnsmith_ir.Graph
module Runner = Nnsmith_ops.Runner
module Search = Nnsmith_grad.Search
module Cov = Nnsmith_coverage.Coverage
module Tel = Nnsmith_telemetry.Telemetry

(* One clock for campaigns, search and bench: Telemetry.now_ms. *)
let now_ms = Tel.now_ms

type sample = {
  at_ms : float;
  tests : int;
  cov_total : int;
  cov_pass : int;
  extra : int;  (** campaign-specific counter (e.g. unique op instances) *)
}

type result = {
  fuzzer : string;
  system : string;
  samples : sample list;  (** chronological *)
  final : Cov.snapshot;
  tests : int;
  crashes : (string * int) list;  (** dedup message -> count *)
}

let incr_count tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Inputs for a test case: lives in Inputs so that Reduce and Report can
   share it without depending on this module; re-exported here for API
   stability (without the iteration-cap option). *)
let find_binding rng g = Inputs.find_binding rng g

(** Coverage campaign of one generator against one system.  Resets global
    coverage first.  Seeded faults should normally be disabled for coverage
    runs (crashes would truncate executions).  With [report_dir], every
    crash and semantic mismatch is saved to the persistent corpus there
    (minimized, deduplicated across runs). *)
let coverage ?report_dir ~budget_ms ~(system : Systems.t) (gen : Generators.t)
    : result =
  Cov.reset ();
  Tel.reset ();
  let corpus = Option.map Nnsmith_corpus.Corpus.open_ report_dir in
  let report g binding v =
    Option.iter
      (fun c ->
        ignore (Report.save_failure c ~system ~generator:gen.g_name g binding v))
      corpus
  in
  let rng = Random.State.make [| Hashtbl.hash (gen.g_name, system.s_name) |] in
  let start = now_ms () in
  let samples = ref [] in
  let crashes = Hashtbl.create 8 in
  let tests = ref 0 in
  let record () =
    let snap = Cov.snapshot () in
    samples :=
      {
        at_ms = now_ms () -. start;
        tests = !tests;
        cov_total = Cov.count snap;
        cov_pass = Cov.count_pass snap;
        extra = 0;
      }
      :: !samples
  in
  while now_ms () -. start < budget_ms do
    incr tests;
    (match gen.next () with
    | None -> ()
    | Some g -> (
        let binding = find_binding rng g in
        match Harness.test system g binding with
        | Harness.Pass | Skipped _ -> ()
        | Harness.Semantic _ as v -> report g binding v
        | Harness.Crash m as v ->
            let key = Harness.dedup_key m in
            Tel.incr "exec/crashes";
            Tel.event "crash" key;
            incr_count crashes key;
            report g binding v
        | exception _ -> ()));
    record ()
  done;
  {
    fuzzer = gen.g_name;
    system = system.s_name;
    samples = List.rev !samples;
    final = Cov.snapshot ();
    tests = !tests;
    crashes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) crashes [];
  }

(** TZer campaign: mutates Lotus's low-level IR directly. *)
let tzer ~budget_ms ~seed : result =
  Cov.reset ();
  Tel.reset ();
  let st = Nnsmith_baselines.Tzer.create ~seed () in
  let start = now_ms () in
  let samples = ref [] in
  let tests = ref 0 in
  while now_ms () -. start < budget_ms do
    incr tests;
    Nnsmith_baselines.Tzer.step st;
    let snap = Cov.snapshot () in
    samples :=
      {
        at_ms = now_ms () -. start;
        tests = !tests;
        cov_total = Cov.count snap;
        cov_pass = Cov.count_pass snap;
        extra = 0;
      }
      :: !samples
  done;
  {
    fuzzer = "TZer";
    system = "Lotus";
    samples = List.rev !samples;
    final = Cov.snapshot ();
    tests = !tests;
    crashes = [];
  }

(** Unique-operator-instance campaign (Figure 9): generation only. *)
let op_instances ~budget_ms (gen : Generators.t) : result =
  Tel.reset ();
  let start = now_ms () in
  let samples = ref [] in
  let tests = ref 0 in
  let insts = Opinst.create () in
  while now_ms () -. start < budget_ms do
    incr tests;
    (match gen.next () with
    | None -> ()
    | Some g -> ignore (Opinst.add insts g));
    samples :=
      {
        at_ms = now_ms () -. start;
        tests = !tests;
        cov_total = 0;
        cov_pass = 0;
        extra = Opinst.count insts;
      }
      :: !samples
  done;
  {
    fuzzer = gen.g_name;
    system = "-";
    samples = List.rev !samples;
    final = Cov.empty;
    tests = !tests;
    crashes = [];
  }
