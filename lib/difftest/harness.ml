(** One differential test: reference vs compiled execution, with O0
    re-compilation for fault localisation (§4) and high error tolerance to
    suppress floating-point false alarms (§5.4). *)

module Nd = Nnsmith_tensor.Nd
module Graph = Nnsmith_ir.Graph
module Runner = Nnsmith_ops.Runner
module Plan = Nnsmith_exec.Plan
module Faults = Nnsmith_faults.Faults
module Tel = Nnsmith_telemetry.Telemetry

type verdict =
  | Pass
  | Crash of string  (** dedup key: the exception message *)
  | Semantic of { sem_kind : [ `Optimization | `Frontend ]; rel_err : float }
  | Skipped of string
      (** reference produced NaN/Inf, or no comparable outputs *)

(* High tolerance, per the false-alarm discussion in §5.4. *)
let rtol = 1e-2
let atol = 1e-3

let message_of_exn = function
  | Faults.Compiler_bug m -> m
  | Nnsmith_ops.Eval.Eval_error m -> "[runtime-eval] " ^ m
  | Invalid_argument m -> "[runtime-invalid] " ^ m
  | e -> "[exn] " ^ Printexc.to_string e

let outputs_match reference got =
  List.length reference = List.length got
  && List.for_all2
       (fun (_, a) (_, b) -> Nd.approx_equal ~rtol ~atol a b)
       reference got

let worst_rel_err reference got =
  if List.length reference <> List.length got then infinity
  else
    List.fold_left2
      (fun acc (_, a) (_, b) -> Float.max acc (Nd.max_rel_error a b))
      0. reference got

(* Reference outputs plus the §2.3 any-NaN/Inf flag.  With execution plans
   enabled this reuses the graph's compiled arena plan across probes;
   otherwise it interprets the graph from scratch.  Both produce
   bit-identical outputs and raise the same exceptions. *)
let reference_outputs (g : Graph.t) (binding : Runner.binding) :
    (int * Nd.t) list * bool =
  if Plan.enabled () then Plan.run_reference (Plan.for_oracle g) binding
  else begin
    let all_values = Runner.run g binding in
    let any_bad = List.exists (fun (_, v) -> Nd.has_bad v) all_values in
    ( List.map
        (fun (n : Graph.node) -> (n.Graph.id, List.assoc n.Graph.id all_values))
        (Graph.outputs g),
      any_bad )
  end

(** Differentially test [g] on [system] under [binding].  The reference
    semantics come from the *pre-export* model (the "PyTorch" results);
    [exported] is what the compiler actually receives. *)
let test ?(exported : Graph.t option) (system : Systems.t) (g : Graph.t)
    (binding : Runner.binding) : verdict =
  Tel.with_span "exec/test" @@ fun () ->
  let exported = Option.value exported ~default:g in
  match
    Tel.with_span "exec/reference" (fun () -> reference_outputs g binding)
  with
  | exception e -> Skipped ("reference failed: " ^ message_of_exn e)
  | _, true ->
      (* §2.3: exclude executions with internal NaN/Inf entirely *)
      Skipped "reference produced NaN/Inf"
  | reference, false -> begin
      match system.compile_and_run Systems.O2 exported binding with
      | exception e -> Crash (message_of_exn e)
      | optimized ->
          if
            Tel.with_span "exec/compare" (fun () ->
                outputs_match reference optimized)
          then Pass
          else begin
            (* localise: recompile without optimizations *)
            let rel_err = worst_rel_err reference optimized in
            match system.compile_and_run Systems.O0 exported binding with
            | exception e -> Crash (message_of_exn e)
            | o0 ->
                if
                  Tel.with_span "exec/compare" (fun () ->
                      outputs_match o0 optimized)
                then
                  (* O0 agrees with O2: the front end (or the export) is
                     wrong, not the optimizer *)
                  Semantic { sem_kind = `Frontend; rel_err }
                else Semantic { sem_kind = `Optimization; rel_err }
          end
    end

(** Cross-check two compilers against each other on the same model and
    binding — the alternative oracle design §4 argues against (it is limited
    to the common support matrix and cannot localise which side is wrong).
    Provided for completeness; [None] when either side crashes. *)
let cross_check (sys_a : Systems.t) (sys_b : Systems.t) (g : Graph.t)
    (binding : Runner.binding) : [ `Agree | `Disagree of float ] option =
  match
    ( sys_a.compile_and_run Systems.O2 g binding,
      sys_b.compile_and_run Systems.O2 g binding )
  with
  | a, b ->
      if outputs_match a b then Some `Agree
      else Some (`Disagree (worst_rel_err a b))
  | exception _ -> None

(** Crash-dedup key: digits (node ids, shapes) are masked so that the same
    defect reported against different nodes counts once, mirroring the
    paper's by-error-message dedup. *)
let dedup_key m = String.map (fun c -> if c >= '0' && c <= '9' then '#' else c) m

(** Extract the seeded-bug id from a crash message, if any ("[id] ..."). *)
let bug_id_of_message m =
  if String.length m > 2 && m.[0] = '[' then
    match String.index_opt m ']' with
    | Some close -> (
        let id = String.sub m 1 (close - 1) in
        match Faults.find id with Some _ -> Some id | None -> None)
    | None -> None
  else None
