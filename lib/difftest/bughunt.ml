(** The seeded-bug study behind Table 3: run every fuzzer against every
    system with all seeded defects active and record which defects each
    fuzzer can trigger. *)

module Graph = Nnsmith_ir.Graph
module Runner = Nnsmith_ops.Runner
module Faults = Nnsmith_faults.Faults

let now_ms () = Unix.gettimeofday () *. 1000.

type result = {
  fuzzer : string;
  tests : int;
  triggered : (string, int) Hashtbl.t;  (** seeded bug id -> hit count *)
  unique_crashes : (string, int) Hashtbl.t;  (** crash message -> count *)
}

let incr_count tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let semantic_candidates (system : Systems.t) =
  List.filter
    (fun (b : Faults.bug) ->
      b.effect = Faults.Semantic
      && (b.system = system.s_name || b.system = "Exporter"))
    Faults.catalogue

(* A semantic mismatch does not name its defect; re-run with each candidate
   defect enabled in isolation to attribute it. *)
let attribute_semantic (system : Systems.t) g binding triggered =
  List.iter
    (fun (b : Faults.bug) ->
      Faults.with_bugs [ b.b_id ] (fun () ->
          let exported, _ = Exporter.export g in
          match Harness.test ~exported system g binding with
          | Harness.Semantic _ -> incr_count triggered b.b_id
          | Harness.Pass | Crash _ | Skipped _ -> ()
          | exception _ -> ()))
    (semantic_candidates system)

(** Hunt with every seeded defect active for [budget_ms].  With
    [report_dir], every crash and semantic mismatch is saved to the
    persistent corpus there (minimized, deduplicated across runs). *)
let hunt ?journal ?report_dir ~budget_ms (gen : Generators.t) : result =
  let rng = Random.State.make [| Hashtbl.hash gen.g_name |] in
  Campaign.journal_start journal ~kind:"hunt"
    ~systems:(List.map (fun (s : Systems.t) -> s.s_name) Systems.all)
    ~generator:gen.g_name
    ~seed:(Hashtbl.hash gen.g_name)
    ~budget_ms;
  let corpus =
    Option.map (fun d -> Nnsmith_corpus.Corpus.open_ ?journal d) report_dir
  in
  let saved = ref 0 and dups = ref 0 in
  let report system ~export_bugs g binding v =
    Option.iter
      (fun c ->
        match
          Report.save_failure c ~system ~generator:gen.g_name ~export_bugs g
            binding v
        with
        | `Saved _ -> incr saved
        | `Duplicate _ -> incr dups
        | `Not_failure -> ())
      corpus
  in
  let triggered = Hashtbl.create 32 in
  let unique_crashes = Hashtbl.create 32 in
  let verdicts = Hashtbl.create 8 in
  let tests = ref 0 in
  let start = now_ms () in
  Faults.with_bugs
    (List.map (fun (b : Faults.bug) -> b.b_id) Faults.catalogue)
    (fun () ->
      while now_ms () -. start < budget_ms do
        incr tests;
        match gen.next () with
        | None -> incr_count verdicts "gen_fail"
        | Some g -> (
            match
              let binding = Campaign.find_binding rng g in
              let exported, export_bugs = Exporter.export g in
              (binding, exported, export_bugs)
            with
            | exception _ -> incr_count verdicts "gen_fail"
            | binding, exported, export_bugs ->
                List.iter (fun id -> incr_count triggered id) export_bugs;
                List.iter
                  (fun system ->
                    match Harness.test ~exported system g binding with
                    | Harness.Pass -> incr_count verdicts "pass"
                    | Skipped _ -> incr_count verdicts "skipped"
                    | Harness.Crash m as v ->
                        incr_count unique_crashes (Harness.dedup_key m);
                        incr_count verdicts "crash";
                        (match Harness.bug_id_of_message m with
                        | Some id -> incr_count triggered id
                        | None -> ());
                        report system ~export_bugs g binding v
                    | Harness.Semantic _ as v ->
                        incr_count verdicts "semantic";
                        attribute_semantic system g binding triggered;
                        report system ~export_bugs g binding v
                    | exception _ -> incr_count verdicts "error")
                  Systems.all)
      done);
  Campaign.journal_summary journal
    ~elapsed_ms:(now_ms () -. start)
    ~tests:!tests
    ~verdicts:
      (List.sort compare
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) verdicts []))
    ~failures:(Hashtbl.length unique_crashes) ~saved:!saved ~dups:!dups
    ~cov_total:0 ~cov_pass:0;
  { fuzzer = gen.g_name; tests = !tests; triggered; unique_crashes }

(** Rows of Table 3 restricted to the given triggered set: per system, the
    count per category plus crash/semantic split. *)
let distribution (triggered : (string, int) Hashtbl.t) =
  let systems = [ "OxRT"; "Lotus"; "TRT"; "Exporter" ] in
  List.map
    (fun sys ->
      let bugs =
        List.filter
          (fun (b : Faults.bug) ->
            b.system = sys && Hashtbl.mem triggered b.b_id)
          Faults.catalogue
      in
      let count cat =
        List.length (List.filter (fun (b : Faults.bug) -> b.category = cat) bugs)
      in
      let effect e =
        List.length (List.filter (fun (b : Faults.bug) -> b.effect = e) bugs)
      in
      ( sys,
        count Faults.Transformation,
        count Faults.Conversion,
        count Faults.Unclassified,
        effect Faults.Crash,
        effect Faults.Semantic ))
    systems
