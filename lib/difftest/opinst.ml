(** Unique operator-instance accounting for the binning ablation (Figure 9):
    instances are distinguished by operator, attributes and input types,
    as the paper does with Relay's type system. *)

module Op = Nnsmith_ir.Op
module Conc = Nnsmith_ir.Ttype.Conc
module Graph = Nnsmith_ir.Graph
module Dtype = Nnsmith_tensor.Dtype
module Tel = Nnsmith_telemetry.Telemetry

type t = {
  seen : (string, unit) Hashtbl.t;
  (* Concrete type -> rendered string.  Campaigns see the same few dozen
     concrete input types thousands of times; rendering each once makes
     key construction allocation-light. *)
  ty_memo : (Conc.t, string) Hashtbl.t;
  abs_seen : (string, unit) Hashtbl.t;
  (* Abstract instance accounting: operator name plus the (dtype, rank)
     signature of its inputs — the key space of the generator's per-op
     feasibility memo.  Tracking how few abstract signatures a campaign's
     instances collapse into explains the memo's hit rate. *)
}

let create () : t =
  {
    seen = Hashtbl.create 256;
    ty_memo = Hashtbl.create 64;
    abs_seen = Hashtbl.create 64;
  }

let type_string t (c : Conc.t) =
  match Hashtbl.find_opt t.ty_memo c with
  | Some s -> s
  | None ->
      let s = Conc.to_string c in
      Hashtbl.add t.ty_memo c s;
      s

let instance_key (g : Graph.t) (n : Graph.node) =
  let in_types =
    List.map
      (fun i -> Conc.to_string (Graph.find g i).Graph.out_type)
      n.Graph.inputs
  in
  Format.asprintf "%a(%s)" Op.pp_concrete n.Graph.op
    (String.concat "," in_types)

(* Same key as [instance_key], built through the type-string memo and a
   reused buffer instead of per-node Format plumbing. *)
let instance_key_memo t buf (g : Graph.t) (n : Graph.node) =
  Buffer.clear buf;
  Buffer.add_string buf (Format.asprintf "%a" Op.pp_concrete n.Graph.op);
  Buffer.add_char buf '(';
  List.iteri
    (fun i inp ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (type_string t (Graph.find g inp).Graph.out_type))
    n.Graph.inputs;
  Buffer.add_char buf ')';
  Buffer.contents buf

(* Abstract key: operator name + input (dtype, rank) pairs, dropping
   attributes and dimension magnitudes. *)
let abs_key buf (g : Graph.t) (n : Graph.node) =
  Buffer.clear buf;
  Buffer.add_string buf (Op.name n.Graph.op);
  Buffer.add_char buf '(';
  List.iteri
    (fun i inp ->
      if i > 0 then Buffer.add_char buf ',';
      let c = (Graph.find g inp).Graph.out_type in
      Buffer.add_string buf (Dtype.to_string (Conc.dtype c));
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (Conc.rank c)))
    n.Graph.inputs;
  Buffer.add_char buf ')';
  Buffer.contents buf

(** Record all operator instances of a model; returns how many were new. *)
let add (t : t) (g : Graph.t) : int =
  let buf = Buffer.create 128 in
  List.fold_left
    (fun fresh (n : Graph.node) ->
      match n.Graph.op with
      | Op.Leaf _ -> fresh
      | _ ->
          let akey = abs_key buf g n in
          if not (Hashtbl.mem t.abs_seen akey) then begin
            Hashtbl.replace t.abs_seen akey ();
            Tel.incr "cov/abs_sigs"
          end;
          let key = instance_key_memo t buf g n in
          if Hashtbl.mem t.seen key then fresh
          else begin
            Hashtbl.replace t.seen key ();
            fresh + 1
          end)
    0 (Graph.nodes g)

let count (t : t) = Hashtbl.length t.seen
let abs_count (t : t) = Hashtbl.length t.abs_seen
