(** Static HTML campaign dashboard.

    Renders one fully self-contained page — inline CSS, inline SVG
    sparklines, zero JavaScript — from the artefacts a campaign leaves on
    disk: the {!Nnsmith_journal.Journal} event log, the bug-report corpus
    ([index.jsonl] plus saved cases), an optional telemetry trajectory
    ([telemetry.jsonl]) and optional benchmark history
    ([bench/history.jsonl], [BENCH_*.json]).

    The page carries: campaign header tiles (kind, systems, seed, budget,
    tests/sec, bug counts), the bug-triage table (dedup key, op signature,
    trigger count, first/last seen, minimized size), coverage and
    throughput trend charts, a per-op-kind verdict heatmap, benchmark
    history, and a journal-health footer (torn tail, bad lines, dropped
    events).

    Aggregation is shared with the CLI — triage rows come from
    {!Nnsmith_corpus.Corpus.triage}, telemetry from
    {!Nnsmith_telemetry.Telemetry.read_jsonl} — so the dashboard and
    [nnsmith triage] can never disagree.  Every number is formatted
    through a finite-guard and chart points are filtered for finiteness,
    so ["NaN"] cannot appear anywhere in the output (the CI gate greps
    for it). *)

val of_dir :
  ?bench_dir:string -> ?refresh_secs:int -> ?now_ms:float -> string -> string
(** [of_dir dir] reads whatever campaign artefacts exist under [dir]
    (all optional — missing pieces render as empty-state notes, never
    errors) and returns the complete HTML document as a string.

    [bench_dir] (default ["."]) is where [bench/history.jsonl] and
    [BENCH_*.json] files are looked up when [dir] has no local bench
    history — typically the repository root.

    [refresh_secs] adds a [meta http-equiv="refresh"] tag, for watching a
    live campaign.  [now_ms] (default [Telemetry.now_ms ()]) is the clock
    the stale-heartbeat warning compares the journal against: a campaign
    with no concluding [Summary] whose last heartbeat is older than twice
    its own median heartbeat interval is flagged as possibly dead. *)
