(** Static HTML campaign dashboard.

    One self-contained page — inline CSS, inline SVG, zero JavaScript —
    rendered from the artefacts a campaign leaves on disk: the event
    journal ([journal.jsonl]), the bug-report corpus ([index.jsonl] +
    cases), an optional telemetry trajectory and optional benchmark
    history.  Aggregation is shared with the CLI ([Corpus.triage],
    [Telemetry.read_jsonl], [Journal.read_file]); this module only lays
    the numbers out. *)

module Json = Nnsmith_telemetry.Json
module Tel = Nnsmith_telemetry.Telemetry
module Journal = Nnsmith_journal.Journal
module Corpus = Nnsmith_corpus.Corpus
module History = Nnsmith_bench.History
module Metrics = Nnsmith_bench.Metrics

(* ------------------------------------------------------------------ *)
(* Gathered inputs                                                     *)

type triage_entry = { te_row : Corpus.triage_row; te_ops : string list }

type input = {
  in_title : string;
  in_journal : Journal.read_result option;
  in_triage : triage_entry list;
  in_corpus_size : int;
  in_telemetry : Tel.snapshot list;
  in_history : History.row list;  (** chronological *)
  in_latest : (string * Json.t) list;  (** BENCH_*.json last rows, by file *)
  in_refresh_secs : int option;  (** emit a meta-refresh tag *)
  in_now_ms : float;  (** staleness reference clock (injectable in tests) *)
}

(* ------------------------------------------------------------------ *)
(* Small helpers: escaping and NaN-proof formatting                    *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Every number that reaches the page goes through one of these, so a
   non-finite value can never leak into text or an SVG path. *)
let fmt_f ?(decimals = 1) x =
  if Float.is_finite x then Printf.sprintf "%.*f" decimals x else "–"

let fmt_i = string_of_int

(* ------------------------------------------------------------------ *)
(* SVG sparkline                                                       *)

(* A single-series line chart as inline SVG.  Non-finite points are
   filtered before layout; fewer than two finite points degrades to a
   textual note, so no chart ever contains a NaN coordinate. *)
let sparkline ?(w = 620.) ?(h = 120.) ~css_class points =
  let pts =
    List.filter (fun (x, y) -> Float.is_finite x && Float.is_finite y) points
  in
  match pts with
  | [] | [ _ ] ->
      Printf.sprintf
        "<p class=\"muted\">not enough data points to chart (%d)</p>"
        (List.length pts)
  | _ ->
      let xs = List.map fst pts and ys = List.map snd pts in
      let fmin = List.fold_left Float.min infinity
      and fmax = List.fold_left Float.max neg_infinity in
      let x0 = fmin xs and x1 = fmax xs in
      let y0 = Float.min 0. (fmin ys) and y1 = fmax ys in
      let xspan = if x1 -. x0 > 0. then x1 -. x0 else 1. in
      let yspan = if y1 -. y0 > 0. then y1 -. y0 else 1. in
      let pad = 6. in
      let px x = pad +. ((x -. x0) /. xspan *. (w -. (2. *. pad))) in
      let py y = h -. pad -. ((y -. y0) /. yspan *. (h -. (2. *. pad))) in
      let path =
        String.concat " "
          (List.map
             (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y))
             pts)
      in
      Printf.sprintf
        "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" \
         preserveAspectRatio=\"none\" class=\"spark\">\
         <polyline class=\"%s\" fill=\"none\" stroke-width=\"2\" \
         points=\"%s\"/></svg>\
         <div class=\"axis-note\"><span>%s</span><span>max %s</span></div>"
        w h css_class path
        (fmt_f ~decimals:0 y0)
        (fmt_f ~decimals:0 y1)

(* The always-available table view behind each chart (works without JS). *)
let data_table ~summary headers rows =
  let b = Buffer.create 256 in
  Printf.bprintf b "<details><summary>%s</summary><table><thead><tr>"
    (esc summary);
  List.iter (fun h -> Printf.bprintf b "<th>%s</th>" (esc h)) headers;
  Buffer.add_string b "</tr></thead><tbody>";
  List.iter
    (fun row ->
      Buffer.add_string b "<tr>";
      List.iter (fun c -> Printf.bprintf b "<td>%s</td>" (esc c)) row;
      Buffer.add_string b "</tr>")
    rows;
  Buffer.add_string b "</tbody></table></details>";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Journal-derived series                                              *)

let journal_events input =
  match input.in_journal with Some r -> r.Journal.events | None -> []

(* [Start]'s and [Summary]'s payloads are inline records, which cannot
   escape a match — project the fields we show into plain tuples. *)
let find_start input =
  List.find_map
    (function
      | Journal.Start s ->
          Some
            ( s.s_kind,
              s.s_systems,
              s.s_generator,
              s.s_root_seed,
              s.s_jobs,
              s.s_budget )
      | _ -> None)
    (journal_events input)

let find_summary input =
  (* the last summary wins: a resumed campaign appends a fresh one *)
  List.fold_left
    (fun acc ev ->
      match ev with
      | Journal.Summary f ->
          Some
            ( f.f_tests,
              f.f_tests_per_sec,
              f.f_failures,
              f.f_saved,
              f.f_dups,
              f.f_cov_total )
      | _ -> acc)
    None (journal_events input)

let coverage_series input =
  let explicit =
    List.filter_map
      (function
        | Journal.Coverage c ->
            Some (float_of_int c.c_tests, float_of_int c.c_total)
        | _ -> None)
      (journal_events input)
  in
  match explicit with
  | _ :: _ :: _ -> explicit
  | _ ->
      (* Sequential campaigns stream [Coverage] events; the sharded
         drivers emit one final union.  Fall back to heartbeats there:
         x = campaign-wide tests (sum of last-known per-worker counts),
         y = the largest per-worker domain-local table (a lower bound on
         the union — the same figure the live progress line shows). *)
      let tests = Hashtbl.create 8 and covs = Hashtbl.create 8 in
      let out = ref [] in
      List.iter
        (function
          | Journal.Heartbeat h ->
              Hashtbl.replace tests h.h_worker h.h_tests;
              Hashtbl.replace covs h.h_worker h.h_cov_total;
              let total = Hashtbl.fold (fun _ n acc -> acc + n) tests 0 in
              let cov = Hashtbl.fold (fun _ n acc -> max n acc) covs 0 in
              out := (float_of_int total, float_of_int cov) :: !out
          | _ -> ())
        (journal_events input);
      List.rev_append !out explicit

(* Throughput from heartbeats: at each heartbeat, total tests = the sum of
   every worker's last-reported cumulative count; the series is the rate
   between consecutive totals. *)
let throughput_series input =
  let per_worker = Hashtbl.create 8 in
  let totals = ref [] in
  List.iter
    (function
      | Journal.Heartbeat h ->
          Hashtbl.replace per_worker h.h_worker h.h_tests;
          let total = Hashtbl.fold (fun _ n acc -> acc + n) per_worker 0 in
          totals := (h.h_at_ms, total) :: !totals
      | _ -> ())
    (journal_events input);
  let rec rates acc = function
    | (t1, n1) :: ((t0, n0) :: _ as rest) ->
        let dt = (t1 -. t0) /. 1000. in
        if dt > 0. then
          rates ((t1, float_of_int (n1 - n0) /. dt) :: acc) rest
        else rates acc rest
    | _ -> List.rev acc
  in
  (* !totals is newest-first *)
  rates [] !totals

let bug_timeline input =
  List.filter_map
    (function
      | Journal.Bug b when b.b_new -> Some (b.b_at_ms, b.b_key)
      | _ -> None)
    (journal_events input)

let op_stats input =
  List.fold_left
    (fun acc ev -> match ev with Journal.Op_stats o -> Some o.o_ops | _ -> acc)
    None (journal_events input)

(* ------------------------------------------------------------------ *)
(* Page sections                                                       *)

let section b title body =
  Printf.bprintf b "<section><h2>%s</h2>%s</section>" (esc title) body

let stat_tile label value =
  Printf.sprintf
    "<div class=\"tile\"><div class=\"tile-value\">%s</div>\
     <div class=\"tile-label\">%s</div></div>"
    (esc value) (esc label)

let budget_to_string = function
  | Journal.B_tests n -> Printf.sprintf "%d tests" n
  | Journal.B_time_ms m -> Printf.sprintf "%s s" (fmt_f (m /. 1000.))

let header_section b input =
  let tiles = Buffer.create 256 in
  (match find_start input with
  | Some (kind, systems, generator, root_seed, jobs, budget) ->
      Printf.bprintf tiles "%s"
        (stat_tile "campaign" kind
        ^ stat_tile "systems" (String.concat ", " systems)
        ^ stat_tile "generator" generator
        ^ stat_tile "seed" (fmt_i root_seed)
        ^ stat_tile "jobs" (fmt_i jobs)
        ^ stat_tile "budget" (budget_to_string budget))
  | None -> ());
  (match find_summary input with
  | Some (tests, tps, failures, saved, dups, cov_total) ->
      Printf.bprintf tiles "%s"
        (stat_tile "tests" (fmt_i tests)
        ^ stat_tile "tests/sec" (fmt_f tps)
        ^ stat_tile "distinct failures" (fmt_i failures)
        ^ stat_tile "cases saved" (fmt_i saved)
        ^ stat_tile "duplicates" (fmt_i dups)
        ^ stat_tile "coverage" (fmt_i cov_total))
  | None -> ());
  if Buffer.length tiles > 0 then
    section b "Campaign" ("<div class=\"tiles\">" ^ Buffer.contents tiles ^ "</div>")

let triage_section b input =
  if input.in_triage = [] then
    section b "Bug triage" "<p class=\"muted\">no saved cases</p>"
  else begin
    let body = Buffer.create 1024 in
    Buffer.add_string body
      "<table><thead><tr><th>hits</th><th>system</th><th>verdict</th>\
       <th>nodes</th><th>first</th><th>last</th><th>case</th>\
       <th>op signature</th><th>dedup key</th></tr></thead><tbody>";
    List.iter
      (fun { te_row = r; te_ops } ->
        Printf.bprintf body
          "<tr><td>%d</td><td>%s</td><td><span class=\"verdict verdict-%s\">\
           %s</span></td><td>%d</td><td>#%d</td><td>#%d</td>\
           <td><code>%s</code></td><td>%s</td><td><code>%s</code></td></tr>"
          r.tr_count (esc r.tr_system) (esc r.tr_verdict) (esc r.tr_verdict)
          r.tr_nodes r.tr_first r.tr_last (esc r.tr_case_id)
          (esc (String.concat ", " te_ops))
          (esc r.tr_key))
      input.in_triage;
    Buffer.add_string body "</tbody></table>";
    Printf.bprintf body
      "<p class=\"muted\">%d distinct failure(s), %d case(s) on disk; \
       first/last are index positions (cases + duplicates, all runs)</p>"
      (List.length input.in_triage) input.in_corpus_size;
    section b "Bug triage" (Buffer.contents body)
  end

let coverage_section b input =
  let pts = coverage_series input in
  if pts = [] then ()
  else
    let chart = sparkline ~css_class:"series-cov" pts in
    let table =
      data_table ~summary:"coverage data" [ "tests"; "sites" ]
        (List.map
           (fun (x, y) -> [ fmt_f ~decimals:0 x; fmt_f ~decimals:0 y ])
           pts)
    in
    section b "Coverage trend (sites vs tests)" (chart ^ table)

let throughput_section b input =
  let pts = throughput_series input in
  if pts = [] then ()
  else
    let t0 = List.fold_left (fun a (x, _) -> Float.min a x) infinity pts in
    let rel = List.map (fun (x, y) -> ((x -. t0) /. 1000., y)) pts in
    let chart = sparkline ~css_class:"series-rate" rel in
    let table =
      data_table ~summary:"throughput data" [ "t (s)"; "tests/sec" ]
        (List.map (fun (x, y) -> [ fmt_f x; fmt_f y ]) rel)
    in
    section b "Throughput (tests/sec over time)" (chart ^ table)

(* Sequential blue ramp (light steps 100..700) for the heatmap; counts
   stay visible in every cell, so color never carries the value alone. *)
let heat_bins =
  [| "#cde2fb"; "#9ec5f4"; "#6da7ec"; "#3987e5"; "#1c5cab"; "#0d366b" |]

let heat_cell ~max_count n =
  if n = 0 then "<td class=\"heat-zero\">0</td>"
  else begin
    let frac = float_of_int n /. float_of_int (max 1 max_count) in
    let bin =
      min (Array.length heat_bins - 1)
        (int_of_float (frac *. float_of_int (Array.length heat_bins)))
    in
    let light_text = bin >= 3 in
    Printf.sprintf
      "<td class=\"heat\" style=\"background:%s;color:%s\">%d</td>"
      heat_bins.(bin)
      (if light_text then "#ffffff" else "#0b0b0b")
      n
  end

let heatmap_section b input =
  match op_stats input with
  | None | Some [] -> ()
  | Some ops ->
      let verdict_kinds =
        List.sort_uniq compare
          (List.concat_map (fun (_, vs) -> List.map fst vs) ops)
      in
      let max_count =
        List.fold_left
          (fun acc (_, vs) ->
            List.fold_left (fun acc (_, n) -> max acc n) acc vs)
          0 ops
      in
      let body = Buffer.create 1024 in
      Buffer.add_string body "<table class=\"heatmap\"><thead><tr><th>op</th>";
      List.iter
        (fun v -> Printf.bprintf body "<th>%s</th>" (esc v))
        verdict_kinds;
      Buffer.add_string body "</tr></thead><tbody>";
      List.iter
        (fun (op, vs) ->
          Printf.bprintf body "<tr><th>%s</th>" (esc op);
          List.iter
            (fun v ->
              let n = Option.value ~default:0 (List.assoc_opt v vs) in
              Buffer.add_string body (heat_cell ~max_count n))
            verdict_kinds;
          Buffer.add_string body "</tr>")
        ops;
      Buffer.add_string body "</tbody></table>";
      Printf.bprintf body
        "<p class=\"muted\">cell = op occurrences in tests with that \
         verdict; darker is more</p>";
      section b "Verdicts by op kind" (Buffer.contents body)

let bugs_section b input =
  let bugs = bug_timeline input in
  if bugs = [] then ()
  else
    let t0 = List.fold_left (fun a (x, _) -> Float.min a x) infinity bugs in
    let rows =
      List.map
        (fun (at, key) -> [ fmt_f ((at -. t0) /. 1000.); key ])
        bugs
    in
    section b "New bugs over time"
      (data_table ~summary:(Printf.sprintf "%d new case(s)" (List.length bugs))
         [ "t (s)"; "dedup key" ] rows)

let telemetry_section b input =
  match List.rev input.in_telemetry with
  | [] -> ()
  | last :: _ ->
      let interesting =
        List.filter
          (fun (k, _) ->
            List.exists
              (fun p ->
                String.length k >= String.length p
                && String.sub k 0 (String.length p) = p)
              [
                "journal/"; "parallel/"; "corpus/"; "exec/"; "cov/";
                "smt/prescreen/"; "gen/prescreen/";
              ])
          last.Tel.counters
      in
      (* derived pre-screening rates: screened probes never reach the check
         machinery, so concrete + unsat is exactly the solver calls the
         screen avoided *)
      let c k = Option.value ~default:0 (List.assoc_opt k last.Tel.counters) in
      let screened =
        c "smt/prescreen/concrete" + c "smt/prescreen/unsat"
      in
      let attempts = screened + c "smt/prescreen/miss" in
      let derived =
        if attempts = 0 then []
        else
          [
            [ "prescreen solver calls avoided"; fmt_i screened ];
            [
              "prescreen hit rate";
              Printf.sprintf "%.1f%%"
                (100. *. float_of_int screened /. float_of_int attempts);
            ];
          ]
      in
      let rows = List.map (fun (k, v) -> [ k; fmt_i v ]) interesting @ derived in
      if rows = [] then ()
      else
        section b "Telemetry counters (last snapshot)"
          (data_table ~summary:"counters" [ "counter"; "value" ] rows)

let bench_section b input =
  if input.in_history = [] && input.in_latest = [] then ()
  else begin
    let body = Buffer.create 1024 in
    let by_exp = Hashtbl.create 8 in
    List.iter
      (fun (r : History.row) ->
        Hashtbl.replace by_exp r.History.hr_experiment
          (r
          :: Option.value ~default:[]
               (Hashtbl.find_opt by_exp r.History.hr_experiment)))
      (List.rev input.in_history);
    (* insertion order of experiments, chronological rows *)
    let exps =
      List.sort_uniq compare
        (List.map
           (fun (r : History.row) -> r.History.hr_experiment)
           input.in_history)
    in
    List.iter
      (fun exp ->
        let rows = Option.value ~default:[] (Hashtbl.find_opt by_exp exp) in
        let pts =
          List.mapi
            (fun i (r : History.row) ->
              (float_of_int i, r.History.hr_tests_per_sec))
            rows
        in
        (* counter trend: allocation words per run, from schema-2 rows *)
        let alloc_pts =
          List.mapi
            (fun i (r : History.row) ->
              Option.map
                (fun c -> (float_of_int i, Metrics.alloc_words c))
                r.History.hr_counters)
            rows
          |> List.filter_map Fun.id
        in
        (* a row whose parent is not the previous row's commit marks a gap
           in per-commit history: commits passed without a bench run *)
        let gaps =
          let prev = ref None in
          List.map
            (fun (r : History.row) ->
              let gap =
                match (!prev, r.History.hr_parent) with
                | Some p, Some parent -> parent <> p
                | Some _, None | None, _ -> false
              in
              prev := Some r.History.hr_commit;
              gap)
            rows
        in
        Printf.bprintf body "<h3>%s</h3>%s%s%s" (esc exp)
          (sparkline ~h:80. ~css_class:"series-rate" pts)
          (if alloc_pts = [] then ""
           else sparkline ~h:80. ~css_class:"series-alloc" alloc_pts)
          (data_table ~summary:"runs"
             [ "commit"; "parent"; "tests/sec"; "alloc words"; "digest" ]
             (List.map2
                (fun (r : History.row) gap ->
                  [
                    (r.History.hr_commit
                    ^ if gap then " (gap: commits unbenched)" else "");
                    Option.value ~default:"–" r.History.hr_parent;
                    fmt_f r.History.hr_tests_per_sec;
                    (match r.History.hr_counters with
                    | Some c -> fmt_f ~decimals:0 (Metrics.alloc_words c)
                    | None -> "–");
                    r.History.hr_digest;
                  ])
                rows gaps)))
      exps;
    if input.in_latest <> [] then
      Printf.bprintf body "%s"
        (data_table ~summary:"latest benchmark files" [ "file"; "row" ]
           (List.map
              (fun (f, j) -> [ f; Json.to_string j ])
              input.in_latest));
    section b "Benchmark history" (Buffer.contents body)
  end

(* A campaign that stopped heartbeating without writing a [Summary] is
   possibly dead (wedged, killed, or awaiting [--resume]).  The expected
   cadence is estimated from the journal itself — the median gap between
   consecutive heartbeats, floored at the writers' 250 ms rate limit — so
   no configuration has to be plumbed in. *)
let stale_heartbeat input =
  match input.in_journal with
  | None -> None
  | Some r ->
      let hbs =
        List.filter_map
          (function Journal.Heartbeat h -> Some h.h_at_ms | _ -> None)
          r.Journal.events
      in
      let last_summary =
        List.fold_left
          (fun acc ev ->
            match ev with
            | Journal.Summary f -> Float.max acc f.f_at_ms
            | _ -> acc)
          neg_infinity r.Journal.events
      in
      match List.rev hbs with
      | [] -> None
      | last :: _ when last_summary >= last -> None  (* campaign concluded *)
      | last :: _ ->
          let gaps =
            let rec go acc = function
              | a :: (b :: _ as rest) -> go ((b -. a) :: acc) rest
              | _ -> acc
            in
            List.sort compare (go [] hbs)
          in
          let median =
            match gaps with
            | [] -> 250.
            | _ -> List.nth gaps (List.length gaps / 2)
          in
          let interval = Float.max 250. median in
          let age = input.in_now_ms -. last in
          if age > 2. *. interval then Some (age, interval) else None

let journal_health_section b input =
  match input.in_journal with
  | None -> section b "Journal" "<p class=\"muted\">no journal found</p>"
  | Some r ->
      let dropped =
        List.fold_left
          (fun acc ev ->
            match ev with Journal.Dropped d -> acc + d.d_count | _ -> acc)
          0 r.Journal.events
      in
      let worker_crashes =
        List.fold_left
          (fun acc ev ->
            match ev with Journal.Worker_crash _ -> acc + 1 | _ -> acc)
          0 r.Journal.events
      in
      let warn cond msg =
        if cond then Printf.sprintf "<p class=\"warn\">&#9888; %s</p>" msg
        else ""
      in
      section b "Journal health"
        (Printf.sprintf
           "<p>%d event(s)%s</p>%s%s%s%s%s"
           (List.length r.Journal.events)
           (if r.Journal.torn_tail then
              " — final line torn (process killed mid-write); all \
               preceding events intact"
            else "")
           (warn (dropped > 0)
              (Printf.sprintf
                 "%d best-effort event(s) dropped at a saturated channel"
                 dropped))
           (warn
              (r.Journal.bad_lines > 0)
              (Printf.sprintf "%d unparseable non-final line(s) skipped"
                 r.Journal.bad_lines))
           (warn r.Journal.torn_tail "torn tail tolerated on read")
           (warn (worker_crashes > 0)
              (Printf.sprintf
                 "%d worker crash(es) filed; the supervisor restarted the \
                  affected shard(s)"
                 worker_crashes))
           (match stale_heartbeat input with
           | None -> ""
           | Some (age, interval) ->
               warn true
                 (Printf.sprintf
                    "campaign possibly dead: last heartbeat %s s ago, \
                     expected every ~%s s — resume with <code>nnsmith \
                     fleet --resume</code> if it was killed"
                    (fmt_f (age /. 1000.))
                    (fmt_f (interval /. 1000.)))))

(* ------------------------------------------------------------------ *)
(* CSS: palette tokens (light + dark) and layout                       *)

let css =
  {|:root { color-scheme: light; }
body {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #3c9a5f;
  --warn: #ec835a;
  margin: 0; padding: 1.5rem; background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
@media (prefers-color-scheme: dark) {
  :root { color-scheme: dark; }
  body {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #3fae6a;
  }
}
h1 { font-size: 1.3rem; margin: 0 0 1rem; }
h2 { font-size: 1.05rem; margin: 0 0 .75rem; color: var(--text-secondary); }
h3 { font-size: .95rem; margin: 1rem 0 .25rem; }
section {
  background: var(--surface-1); border: 1px solid var(--grid);
  border-radius: 8px; padding: 1rem 1.25rem; margin-bottom: 1rem;
}
.tiles { display: flex; flex-wrap: wrap; gap: 1rem; }
.tile { min-width: 7rem; }
.tile-value { font-size: 1.35rem; }
.tile-label { color: var(--muted); font-size: .8rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td {
  text-align: left; padding: .25rem .6rem;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
thead th { color: var(--muted); font-weight: 500; }
code { font-size: .85em; }
.muted { color: var(--muted); }
.warn { color: var(--warn); }
.spark { width: 100%; height: 120px; display: block; }
.series-cov { stroke: var(--series-1); }
.series-rate { stroke: var(--series-2); }
.series-alloc { stroke: var(--series-3); }
.axis-note {
  display: flex; justify-content: space-between;
  color: var(--muted); font-size: .75rem;
}
.heatmap td.heat, .heatmap td.heat-zero { text-align: right; }
.heatmap td.heat-zero { color: var(--muted); }
details summary { cursor: pointer; color: var(--muted); margin-top: .4rem; }
.verdict-crash { color: #d03b3b; }
.verdict-semantic { color: #ec835a; }
footer { color: var(--muted); font-size: .8rem; }
|}

let render (input : input) : string =
  let b = Buffer.create 16384 in
  Printf.bprintf b
    "<!DOCTYPE html>\n\
     <html lang=\"en\"><head><meta charset=\"utf-8\">\n\
     <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
     %s<title>%s</title>\n<style>%s</style></head>\n<body>\n<h1>%s</h1>\n"
    (match input.in_refresh_secs with
    | Some n when n > 0 ->
        Printf.sprintf "<meta http-equiv=\"refresh\" content=\"%d\">\n" n
    | _ -> "")
    (esc input.in_title) css (esc input.in_title);
  header_section b input;
  triage_section b input;
  heatmap_section b input;
  coverage_section b input;
  throughput_section b input;
  bugs_section b input;
  telemetry_section b input;
  bench_section b input;
  journal_health_section b input;
  Buffer.add_string b
    "<footer>static nnsmith dashboard — no scripts, safe to archive</footer>\n\
     </body></html>\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Gathering from a campaign directory                                 *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      (try
         while true do
           out := input_line ic :: !out
         done
       with End_of_file -> ());
      List.rev !out)

let load_history path = (History.read path).History.rr_rows

let load_latest_bench bench_dir =
  match Sys.readdir bench_dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter (fun f ->
             String.length f > 6
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort compare
      |> List.filter_map (fun f ->
             let lines =
               List.filter
                 (fun l -> String.trim l <> "")
                 (read_lines (Filename.concat bench_dir f))
             in
             match List.rev lines with
             | last :: _ -> (
                 match Json.parse last with
                 | Ok j -> Some (f, j)
                 | Error _ -> None)
             | [] -> None)

let of_dir ?(bench_dir = ".") ?refresh_secs ?now_ms dir : string =
  let journal =
    let path = Journal.in_dir dir in
    if Sys.file_exists path then
      match Journal.read_file path with Ok r -> Some r | Error _ -> None
    else None
  in
  let triage, corpus_size =
    if Sys.file_exists (Filename.concat dir "index.jsonl") then
      match Corpus.open_ dir with
      | exception Corpus.Corpus_error _ -> ([], 0)
      | corpus ->
          ( List.map
              (fun (r : Corpus.triage_row) ->
                let ops =
                  match Corpus.load_graph corpus r.tr_case_id with
                  | g -> Corpus.op_signature g
                  | exception _ -> []
                in
                { te_row = r; te_ops = ops })
              (Corpus.triage corpus),
            Corpus.size corpus )
    else ([], 0)
  in
  let telemetry =
    let path = Filename.concat dir "telemetry.jsonl" in
    if Sys.file_exists path then
      match Tel.read_jsonl path with
      | Ok r -> r.Tel.jr_snapshots
      | Error _ -> []
    else []
  in
  let history =
    let local = Filename.concat dir (Filename.concat "bench" "history.jsonl") in
    let shared =
      Filename.concat bench_dir (Filename.concat "bench" "history.jsonl")
    in
    match load_history local with [] -> load_history shared | rows -> rows
  in
  render
    {
      in_title = "nnsmith campaign — " ^ dir;
      in_journal = journal;
      in_triage = triage;
      in_corpus_size = corpus_size;
      in_telemetry = telemetry;
      in_history = history;
      in_latest = load_latest_bench bench_dir;
      in_refresh_secs = refresh_secs;
      in_now_ms = (match now_ms with Some t -> t | None -> Tel.now_ms ());
    }
