(** Compiled execution plans: per-graph forward-pass programs built once and
    reused across every search iteration, restart, and difftest probe of that
    model.

    A plan replaces the interpreter's per-iteration machinery with
    ahead-of-time decisions:

    - the topological node order becomes a dense slot array (no more
      per-iteration [Hashtbl] keyed by node id);
    - broadcast / stride / reduction index arithmetic is materialised into
      flat offset arrays per op at compile time;
    - each op gets a destination-passing kernel writing into a preallocated
      output buffer; in arena mode ({!for_oracle}) buffers whose last consumer
      has run are recycled for later nodes of matching representation and
      element count, so steady-state passes allocate nothing.

    Bit-identity with the reference interpreter is a hard invariant: every
    kernel is either a raw-array specialisation performing the interpreter's
    arithmetic in the same order (see the comment above the specialised
    kernels), delegates to the same code path {!Nnsmith_ops.Eval} uses (via
    the shared [_into] variants), or falls back to [Eval.eval] for that node.
    Ops whose declared types don't validate — and nodes whose runtime inputs
    stop matching their declared types — always take the fallback, so error
    behaviour and exotic cases match the interpreter exactly. *)

module Nd = Nnsmith_tensor.Nd
module Dtype = Nnsmith_tensor.Dtype
module Shape = Nnsmith_tensor.Shape
module Linalg = Nnsmith_tensor.Linalg
module Reduce = Nnsmith_tensor.Reduce
module Transform = Nnsmith_tensor.Transform
module Op = Nnsmith_ir.Op
module Graph = Nnsmith_ir.Graph
module Conc = Nnsmith_ir.Ttype.Conc
module Eval = Nnsmith_ops.Eval
module Runner = Nnsmith_ops.Runner
module Tel = Nnsmith_telemetry.Telemetry

type slot = {
  node : Graph.node;
  in_slots : int array;
  kernel : (Nd.t array -> Nd.t -> unit) option;
  decl_dtype : Dtype.t;
  decl_shape : Shape.t;
  buffer : Nd.t;
  ins_buf : Nd.t array;
  is_leaf : bool;
  mutable value : Nd.t;
  mutable decl_ok : bool;
  mutable valid : bool;
}

type t = {
  graph : Graph.t;
  slots : slot array;
  slot_of_id : (int, int) Hashtbl.t;
  consumers : int array array;
  values_tbl : (int, Nd.t) Hashtbl.t;
  visited : bool array;
}

let graph p = p.graph

(* ------------------------------------------------------------------ *)
(* Kernel compilation.                                                 *)

(* [idx] turns an optional materialised index map into a read-offset
   function; [None] is the identity (source already has the output shape). *)
let idx = function
  | None -> fun i -> i
  | Some m -> fun i -> Array.unsafe_get m i

(* A shape/dtype-only stand-in for kernels that validate via functions taking
   tensors ([Linalg.conv2d_dims]); never read element-wise. *)
let phantom dtype shape = { Nd.dtype; shape; data = Nd.F Nd.empty_f }

(* Unboxed-buffer accessors for the raw kernels below; soundness of the
   unsafe variants is argued in the comment under "Specialised raw-array
   float kernels". *)
let fget : Nd.farray -> int -> float = Bigarray.Array1.unsafe_get
let fset : Nd.farray -> int -> float -> unit = Bigarray.Array1.unsafe_set

(* Specialised raw-array float kernels.

   Every float tensor stores values already normalised for its dtype (each
   write site rounds F32 through {!Dtype.round_f32}), so reading
   [Nd.float_data] directly yields the same floats as [Nd.to_float], and
   writing [Dtype.round_f32] (or raw, for F64) produces the same bits as
   [Nd.set_f].  The loops below therefore drop only the per-element
   representation dispatch and bounds checks of the generic [_into] kernels;
   the arithmetic, iteration order and normalisation are identical, which the
   bit-identity tests and the bench digest verify.  [unsafe_get]/[unsafe_set]
   are sound because kernels only run once [decl_ok] has validated every
   input against its declared dtype and shape, and all indices are derived
   from those shapes at compile time. *)

(* Copy-with-index-map for the movement ops (transpose / slice / pad /
   expand / tile); source values are already normalised so a raw copy
   matches [Transform.gather_into] bit-for-bit.  Non-float dtypes keep the
   generic path. *)
let gather_kernel dt map ~fill =
  if Dtype.is_float dt then begin
    let fill = Dtype.normalize_float dt fill in
    let nm = Array.length map in
    fun (ib : Nd.t array) dst ->
      let x = Nd.float_data ib.(0) and o = Nd.float_data dst in
      for i = 0 to nm - 1 do
        let j = Array.unsafe_get map i in
        fset o i (if j >= 0 then fget x j else fill)
      done
  end
  else fun ib dst -> Transform.gather_into ib.(0) ~map ~fill ~dst

let compile_kernel (op : int Op.t) (ins : (Dtype.t * Shape.t) array)
    (od : Dtype.t) (os : Shape.t) : (Nd.t array -> Nd.t -> unit) option =
  let n = Shape.numel os in
  let arity k = if Array.length ins <> k then raise Exit in
  let map_of k = Nd.index_map ~src:(snd ins.(k)) ~dst:os in
  let same_shape k = Shape.equal (snd ins.(k)) os in
  let broadcast2_is_out () =
    match Shape.broadcast (snd ins.(0)) (snd ins.(1)) with
    | Some s -> Shape.equal s os
    | None -> false
  in
  match op with
  | Op.Leaf _ -> None
  | Op.Unary u ->
      arity 1;
      let xd = fst ins.(0) in
      if not (same_shape 0) then None
      else if Dtype.is_float xd then
        if not (Dtype.equal od xd) then None
        else
          let f = Eval.unary_float_fn u in
          let f64 = Dtype.equal od Dtype.F64 in
          Some
            (fun ib dst ->
              let x = Nd.float_data ib.(0) and o = Nd.float_data dst in
              if f64 then
                for i = 0 to n - 1 do
                  fset o i (f (fget x i))
                done
              else
                for i = 0 to n - 1 do
                  fset o i (Dtype.round_f32 (f (fget x i)))
                done)
      else (
        match Eval.unary_int_fn u with
        | Some f when Dtype.is_int xd && Dtype.equal od xd ->
            Some
              (fun ib dst ->
                let x = ib.(0) in
                for i = 0 to n - 1 do
                  Nd.set_i dst i (f (Nd.to_int x i))
                done)
        | _ -> None)
  | Op.Binary b ->
      arity 2;
      let xd = fst ins.(0) in
      if not (broadcast2_is_out ()) then None
      else if Dtype.is_float xd then
        if not (Dtype.equal od xd) then None
        else
          let f = Eval.binary_float_fn b in
          let f64 = Dtype.equal od Dtype.F64 in
          let reader = function
            | None -> fun (x : Nd.farray) i -> fget x i
            | Some m -> fun (x : Nd.farray) i -> fget x (Array.unsafe_get m i)
          in
          let ga = reader (map_of 0) and gb = reader (map_of 1) in
          Some
            (fun ib dst ->
              let x = Nd.float_data ib.(0)
              and y = Nd.float_data ib.(1)
              and o = Nd.float_data dst in
              if f64 then
                for i = 0 to n - 1 do
                  fset o i (f (ga x i) (gb y i))
                done
              else
                for i = 0 to n - 1 do
                  fset o i (Dtype.round_f32 (f (ga x i) (gb y i)))
                done)
      else (
        match Eval.binary_int_fn b with
        | Some f when Dtype.is_int xd && Dtype.equal od xd ->
            let ia = idx (map_of 0) and ib_ = idx (map_of 1) in
            Some
              (fun ib dst ->
                let x = ib.(0) and y = ib.(1) in
                for i = 0 to n - 1 do
                  Nd.set_i dst i (f (Nd.to_int x (ia i)) (Nd.to_int y (ib_ i)))
                done)
        | _ -> None)
  | Op.Compare c ->
      arity 2;
      let f =
        match c with
        | Op.Equal -> ( = )
        | Op.Greater -> ( > )
        | Op.Less -> ( < )
      in
      if (not (broadcast2_is_out ())) || od <> Dtype.Bool then None
      else
        let ia = idx (map_of 0) and ib_ = idx (map_of 1) in
        Some
          (fun ib dst ->
            let x = ib.(0) and y = ib.(1) in
            for i = 0 to n - 1 do
              Nd.set_b dst i (f (Nd.to_float x (ia i)) (Nd.to_float y (ib_ i)))
            done)
  | Op.Logical l ->
      arity 2;
      let f =
        match l with
        | Op.L_and -> ( && )
        | Op.L_or -> ( || )
        | Op.L_xor -> ( <> )
      in
      if
        (not (broadcast2_is_out ()))
        || fst ins.(0) <> Dtype.Bool
        || fst ins.(1) <> Dtype.Bool
        || od <> Dtype.Bool
      then None
      else
        let ia = idx (map_of 0) and ib_ = idx (map_of 1) in
        Some
          (fun ib dst ->
            let x = ib.(0) and y = ib.(1) in
            for i = 0 to n - 1 do
              Nd.set_b dst i (f (Nd.get_b x (ia i)) (Nd.get_b y (ib_ i)))
            done)
  | Op.Not ->
      arity 1;
      if (not (same_shape 0)) || fst ins.(0) <> Dtype.Bool || od <> Dtype.Bool
      then None
      else
        Some
          (fun ib dst ->
            let x = ib.(0) in
            for i = 0 to n - 1 do
              Nd.set_b dst i (not (Nd.get_b x i))
            done)
  | Op.Clip { c_lo; c_hi } ->
      arity 1;
      if
        (not (same_shape 0))
        || (not (Dtype.is_float (fst ins.(0))))
        || not (Dtype.equal od (fst ins.(0)))
      then None
      else
        let f64 = Dtype.equal od Dtype.F64 in
        Some
          (fun ib dst ->
            let x = Nd.float_data ib.(0) and o = Nd.float_data dst in
            if f64 then
              for i = 0 to n - 1 do
                fset o i (Float.min c_hi (Float.max c_lo (fget x i)))
              done
            else
              for i = 0 to n - 1 do
                fset o i
                  (Dtype.round_f32 (Float.min c_hi (Float.max c_lo (fget x i))))
              done)
  | Op.Leaky_relu { alpha } ->
      arity 1;
      if
        (not (same_shape 0))
        || (not (Dtype.is_float (fst ins.(0))))
        || not (Dtype.equal od (fst ins.(0)))
      then None
      else
        let f64 = Dtype.equal od Dtype.F64 in
        Some
          (fun ib dst ->
            let x = Nd.float_data ib.(0) and o = Nd.float_data dst in
            if f64 then
              for i = 0 to n - 1 do
                let v = fget x i in
                fset o i (if v >= 0. then v else alpha *. v)
              done
            else
              for i = 0 to n - 1 do
                let v = fget x i in
                fset o i (Dtype.round_f32 (if v >= 0. then v else alpha *. v))
              done)
  | Op.Cast target ->
      arity 1;
      if (not (same_shape 0)) || not (Dtype.equal od target) then None
      else begin
        match target with
        | Dtype.F32 | F64 when Dtype.is_float (fst ins.(0)) ->
            if Dtype.equal target Dtype.F64 then
              (* normalisation is the identity for F64, and F32 sources are
                 already rounded: a straight copy matches [map_into Fun.id] *)
              Some
                (fun ib dst ->
                  let x = Nd.float_data ib.(0) and o = Nd.float_data dst in
                  Bigarray.Array1.blit x o)
            else
              Some
                (fun ib dst ->
                  let x = Nd.float_data ib.(0) and o = Nd.float_data dst in
                  for i = 0 to n - 1 do
                    fset o i (Dtype.round_f32 (fget x i))
                  done)
        | Dtype.F32 | F64 -> Some (fun ib dst -> Nd.map_into Fun.id ib.(0) ~dst)
        | I32 | I64 ->
            Some
              (fun ib dst ->
                let x = ib.(0) in
                for i = 0 to n - 1 do
                  Nd.set_i dst i (Nd.to_int x i)
                done)
        | Bool ->
            if fst ins.(0) = Dtype.Bool then
              Some (fun ib dst -> Nd.blit_into ~src:ib.(0) ~dst)
            else
              Some
                (fun ib dst ->
                  let x = ib.(0) in
                  for i = 0 to n - 1 do
                    Nd.set_b dst i (Nd.to_float x i <> 0.)
                  done)
      end
  | Op.Softmax _ | Op.Arg_max _ | Op.Arg_min _ | Op.Gather _ ->
      (* multi-pass or runtime-value-dependent: keep the interpreter path *)
      None
  | Op.Reduce (r, { r_axes; r_keepdims }) ->
      arity 1;
      let xd, xs = ins.(0) in
      if (not (Dtype.is_float xd)) || not (Dtype.equal od xd) then None
      else
        let rp = Reduce.plan ~axes:r_axes ~keepdims:r_keepdims xs in
        if not (Shape.equal (Reduce.out_shape rp) os) then None
        else
          let into =
            match r with
            | Op.R_sum -> Reduce.sum_into
            | R_mean -> Reduce.mean_into
            | R_max -> Reduce.max_into
            | R_min -> Reduce.min_into
            | R_prod -> Reduce.prod_into
          in
          Some (fun ib dst -> into rp ib.(0) ~dst)
  | Op.Mat_mul ->
      arity 2;
      let xd, sa = ins.(0) and yd, sb = ins.(1) in
      let ra = Array.length sa and rb = Array.length sb in
      if
        (not (Dtype.is_float xd))
        || (not (Dtype.is_float yd))
        || ra < 2 || rb < 2
        || not (Dtype.equal od xd)
      then None
      else
        let m = sa.(ra - 2) and k = sa.(ra - 1) in
        let k' = sb.(rb - 2) and nn = sb.(rb - 1) in
        if k <> k' then None
        else begin
          match
            Shape.broadcast (Array.sub sa 0 (ra - 2)) (Array.sub sb 0 (rb - 2))
          with
          | Some batch when Shape.equal (Array.append batch [| m; nn |]) os ->
              (* [Linalg.matmul_into] recomputes the batch-broadcast offset
                 per element; materialise those maps once (identity maps are
                 skipped entirely) and accumulate over raw arrays in the same
                 l-ascending order. *)
              let nb = Shape.numel batch in
              let abatch = Array.append batch [| m; k |] in
              let bbatch = Array.append batch [| k; nn |] in
              let reader src dsts len =
                if Shape.equal src dsts then fun (x : Nd.farray) i -> fget x i
                else
                  let map =
                    Array.init len (Nd.broadcast_offsets ~src ~dst:dsts)
                  in
                  fun (x : Nd.farray) i -> fget x (Array.unsafe_get map i)
              in
              let ga = reader sa abatch (nb * m * k) in
              let gb = reader sb bbatch (nb * k * nn) in
              let f64 = Dtype.equal od Dtype.F64 in
              Some
                (fun ib dst ->
                  let a = Nd.float_data ib.(0)
                  and b = Nd.float_data ib.(1)
                  and o = Nd.float_data dst in
                  for bi = 0 to nb - 1 do
                    for i = 0 to m - 1 do
                      let arow = ((bi * m) + i) * k in
                      for j = 0 to nn - 1 do
                        let acc = ref 0. in
                        for l = 0 to k - 1 do
                          acc :=
                            !acc
                            +. ga a (arow + l)
                               *. gb b ((((bi * k) + l) * nn) + j)
                        done;
                        fset o
                          ((((bi * m) + i) * nn) + j)
                          (if f64 then !acc else Dtype.round_f32 !acc)
                      done
                    done
                  done)
          | _ -> None
        end
  | Op.Conv2d { stride; padding; _ } ->
      arity 2;
      let xd, xs = ins.(0) and wd, ws = ins.(1) in
      let nb, c, h, w, f, kh, kw, oh, ow =
        Linalg.conv2d_dims ~stride:(stride, stride) ~padding:(padding, padding)
          ~dilation:(1, 1) (phantom xd xs) (phantom wd ws)
      in
      if (not (Shape.equal [| nb; f; oh; ow |] os)) || not (Dtype.equal od xd)
      then None
      else
        let f64 = Dtype.equal od Dtype.F64 in
        Some
          (fun ib dst ->
            let x = Nd.float_data ib.(0)
            and wt = Nd.float_data ib.(1)
            and o = Nd.float_data dst in
            for li = 0 to (nb * f * oh * ow) - 1 do
              let ow_i = li mod ow in
              let oh_i = li / ow mod oh in
              let f_i = li / (ow * oh) mod f in
              let n_i = li / (ow * oh * f) in
              let acc = ref 0. in
              for ci = 0 to c - 1 do
                for ki = 0 to kh - 1 do
                  let hi = (oh_i * stride) - padding + ki in
                  if hi >= 0 && hi < h then begin
                    let xrow = ((((n_i * c) + ci) * h) + hi) * w in
                    let wrow = ((((f_i * c) + ci) * kh) + ki) * kw in
                    for kj = 0 to kw - 1 do
                      let wi = (ow_i * stride) - padding + kj in
                      if wi >= 0 && wi < w then
                        acc := !acc +. (fget x (xrow + wi) *. fget wt (wrow + kj))
                    done
                  end
                done
              done;
              fset o li (if f64 then !acc else Dtype.round_f32 !acc)
            done)
  | Op.Pool2d (kind, { p_kh; p_kw; p_stride; p_padding }) ->
      arity 1;
      let xd, xs = ins.(0) in
      let kind =
        match kind with Op.P_max -> Linalg.Max_pool | P_avg -> Linalg.Avg_pool
      in
      let nb, c, h, w, oh, ow =
        Linalg.pool2d_dims ~kernel:(p_kh, p_kw) ~stride:(p_stride, p_stride)
          ~padding:(p_padding, p_padding) (phantom xd xs)
      in
      if (not (Shape.equal [| nb; c; oh; ow |] os)) || not (Dtype.equal od xd)
      then None
      else
        let f64 = Dtype.equal od Dtype.F64 in
        let decode li =
          let ow_i = li mod ow in
          let oh_i = li / ow mod oh in
          let c_i = li / (ow * oh) mod c in
          let n_i = li / (ow * oh * c) in
          (ow_i, oh_i, (((n_i * c) + c_i) * h))
        in
        (match kind with
        | Linalg.Max_pool ->
            Some
              (fun ib dst ->
                let x = Nd.float_data ib.(0) and o = Nd.float_data dst in
                for li = 0 to (nb * c * oh * ow) - 1 do
                  let ow_i, oh_i, base = decode li in
                  let acc = ref Float.neg_infinity in
                  for ki = 0 to p_kh - 1 do
                    let hi = (oh_i * p_stride) - p_padding + ki in
                    if hi >= 0 && hi < h then begin
                      let row = (base + hi) * w in
                      for kj = 0 to p_kw - 1 do
                        let wi = (ow_i * p_stride) - p_padding + kj in
                        if wi >= 0 && wi < w then begin
                          let v = fget x (row + wi) in
                          acc :=
                            (if Float.is_nan v || Float.is_nan !acc then
                               Float.nan
                             else Float.max !acc v)
                        end
                      done
                    end
                  done;
                  fset o li (if f64 then !acc else Dtype.round_f32 !acc)
                done)
        | Avg_pool ->
            Some
              (fun ib dst ->
                let x = Nd.float_data ib.(0) and o = Nd.float_data dst in
                for li = 0 to (nb * c * oh * ow) - 1 do
                  let ow_i, oh_i, base = decode li in
                  let acc = ref 0. and count = ref 0 in
                  for ki = 0 to p_kh - 1 do
                    let hi = (oh_i * p_stride) - p_padding + ki in
                    if hi >= 0 && hi < h then begin
                      let row = (base + hi) * w in
                      for kj = 0 to p_kw - 1 do
                        let wi = (ow_i * p_stride) - p_padding + kj in
                        if wi >= 0 && wi < w then begin
                          incr count;
                          acc := !acc +. fget x (row + wi)
                        end
                      done
                    end
                  done;
                  let v =
                    if !count = 0 then 0. else !acc /. float_of_int !count
                  in
                  fset o li (if f64 then v else Dtype.round_f32 v)
                done))
  | Op.Reshape dims ->
      arity 1;
      let target = Array.of_list dims in
      if
        Shape.numel (snd ins.(0)) <> Shape.numel target
        || (not (Shape.equal target os))
        || not (Dtype.equal od (fst ins.(0)))
      then None
      else Some (fun ib dst -> Nd.copy_data_into ~src:ib.(0) ~dst)
  | Op.Flatten { f_axis } ->
      arity 1;
      let xs = snd ins.(0) in
      let r = Array.length xs in
      if f_axis < 0 || f_axis > r then None
      else begin
        let lead = ref 1 and tail = ref 1 in
        Array.iteri
          (fun k d -> if k < f_axis then lead := !lead * d else tail := !tail * d)
          xs;
        if
          (not (Shape.equal [| !lead; !tail |] os))
          || not (Dtype.equal od (fst ins.(0)))
        then None
        else Some (fun ib dst -> Nd.copy_data_into ~src:ib.(0) ~dst)
      end
  | Op.Squeeze { sq_axis } ->
      arity 1;
      let xs = snd ins.(0) in
      let r = Array.length xs in
      if sq_axis < 0 || sq_axis >= r || xs.(sq_axis) <> 1 then None
      else begin
        let out =
          Array.of_list
            (List.filteri (fun k _ -> k <> sq_axis) (Array.to_list xs))
        in
        if (not (Shape.equal out os)) || not (Dtype.equal od (fst ins.(0)))
        then None
        else Some (fun ib dst -> Nd.copy_data_into ~src:ib.(0) ~dst)
      end
  | Op.Unsqueeze { usq_axis } ->
      arity 1;
      let xs = snd ins.(0) in
      let r = Array.length xs in
      if usq_axis < 0 || usq_axis > r then None
      else begin
        let out =
          Array.init (r + 1) (fun k ->
              if k < usq_axis then xs.(k)
              else if k = usq_axis then 1
              else xs.(k - 1))
        in
        if (not (Shape.equal out os)) || not (Dtype.equal od (fst ins.(0)))
        then None
        else Some (fun ib dst -> Nd.copy_data_into ~src:ib.(0) ~dst)
      end
  | Op.Transpose perm ->
      arity 1;
      let out, map = Transform.transpose_map (snd ins.(0)) perm in
      if (not (Shape.equal out os)) || not (Dtype.equal od (fst ins.(0))) then
        None
      else Some (gather_kernel od map ~fill:0.)
  | Op.Slice { s_axis; s_start; s_stop } ->
      arity 1;
      let xs = snd ins.(0) in
      let r = Array.length xs in
      if s_axis < 0 || s_axis >= r then None
      else begin
        let starts = Array.make r 0
        and stops = Array.copy xs
        and steps = Array.make r 1 in
        starts.(s_axis) <- s_start;
        stops.(s_axis) <- s_stop;
        let out, map = Transform.slice_map xs ~starts ~stops ~steps in
        if (not (Shape.equal out os)) || not (Dtype.equal od (fst ins.(0)))
        then None
        else Some (gather_kernel od map ~fill:0.)
      end
  | Op.Pad (mode, { pad_before; pad_after }) ->
      arity 1;
      let mode =
        match mode with
        | Op.Pad_constant v -> Transform.Constant v
        | Op.Pad_reflect -> Transform.Reflect
        | Op.Pad_replicate -> Transform.Replicate
      in
      let out, map, fill =
        Transform.pad_map (snd ins.(0))
          ~before:(Array.of_list pad_before)
          ~after:(Array.of_list pad_after)
          ~mode
      in
      if (not (Shape.equal out os)) || not (Dtype.equal od (fst ins.(0))) then
        None
      else Some (gather_kernel od map ~fill)
  | Op.Concat { cat_axis; _ } ->
      if Array.length ins = 0 then None
      else begin
        let d0 = fst ins.(0) in
        if
          (not (Array.for_all (fun (d, _) -> Dtype.equal d d0) ins))
          || not (Dtype.equal od d0)
        then None
        else
          let out, spec =
            Transform.concat_spec ~axis:cat_axis
              (Array.to_list (Array.map snd ins))
          in
          if not (Shape.equal out os) then None
          else begin
            let part = Array.make n 0 and off = Array.make n 0 in
            for i = 0 to n - 1 do
              let pi, o = spec i in
              part.(i) <- pi;
              off.(i) <- o
            done;
            match d0 with
            | Dtype.F32 | F64 ->
                (* inputs share the output dtype, so their values are already
                   normalised: a raw copy matches the [set_f] write *)
                Some
                  (fun ib dst ->
                    let srcs = Array.map Nd.float_data ib in
                    let o = Nd.float_data dst in
                    for i = 0 to n - 1 do
                      fset o i
                        (fget
                           (Array.unsafe_get srcs (Array.unsafe_get part i))
                           (Array.unsafe_get off i))
                    done)
            | I32 | I64 ->
                Some
                  (fun ib dst ->
                    for i = 0 to n - 1 do
                      Nd.set_i dst i (Nd.to_int ib.(part.(i)) off.(i))
                    done)
            | Bool ->
                Some
                  (fun ib dst ->
                    for i = 0 to n - 1 do
                      Nd.set_b dst i (Nd.get_b ib.(part.(i)) off.(i))
                    done)
          end
      end
  | Op.Where ->
      arity 3;
      let cd, cs = ins.(0) and td, ts = ins.(1) and fd, fs = ins.(2) in
      if cd <> Dtype.Bool || not (Dtype.equal td fd) then None
      else begin
        match Shape.broadcast_many [ cs; ts; fs ] with
        | Some s when Shape.equal s os && Dtype.equal od td ->
            let ic = idx (map_of 0)
            and ia = idx (map_of 1)
            and ib_ = idx (map_of 2) in
            (match td with
            | Dtype.F32 | F64 ->
                Some
                  (fun ib dst ->
                    let c = ib.(0) and a = ib.(1) and b = ib.(2) in
                    for i = 0 to n - 1 do
                      Nd.set_f dst i
                        (if Nd.get_b c (ic i) then Nd.to_float a (ia i)
                         else Nd.to_float b (ib_ i))
                    done)
            | I32 | I64 ->
                Some
                  (fun ib dst ->
                    let c = ib.(0) and a = ib.(1) and b = ib.(2) in
                    for i = 0 to n - 1 do
                      Nd.set_i dst i
                        (if Nd.get_b c (ic i) then Nd.to_int a (ia i)
                         else Nd.to_int b (ib_ i))
                    done)
            | Bool ->
                Some
                  (fun ib dst ->
                    let c = ib.(0) and a = ib.(1) and b = ib.(2) in
                    for i = 0 to n - 1 do
                      Nd.set_b dst i
                        (if Nd.get_b c (ic i) then Nd.get_b a (ia i)
                         else Nd.get_b b (ib_ i))
                    done))
        | _ -> None
      end
  | Op.Expand target ->
      arity 1;
      let tgt = Array.of_list target in
      if
        (not (Shape.can_broadcast_to ~src:(snd ins.(0)) ~dst:tgt))
        || (not (Shape.equal tgt os))
        || not (Dtype.equal od (fst ins.(0)))
      then None
      else begin
        match Nd.index_map ~src:(snd ins.(0)) ~dst:tgt with
        | None -> Some (fun ib dst -> Nd.copy_data_into ~src:ib.(0) ~dst)
        | Some map -> Some (gather_kernel od map ~fill:0.)
      end
  | Op.Tile reps ->
      arity 1;
      let xs = snd ins.(0) in
      if List.length reps <> Array.length xs then None
      else begin
        let out =
          Array.of_list
            (List.map2 (fun d r -> d * r) (Array.to_list xs) reps)
        in
        if (not (Shape.equal out os)) || not (Dtype.equal od (fst ins.(0)))
        then None
        else
          let map =
            Array.init (Shape.numel out) (fun out_i ->
                let oidx = Shape.unravel out out_i in
                let sidx = Array.mapi (fun k v -> v mod xs.(k)) oidx in
                Shape.ravel xs sidx)
          in
          Some (gather_kernel od map ~fill:0.)
      end

let compile_kernel op ins od os =
  (* any compile-time surprise means "use the interpreter for this node" —
     that path reproduces the interpreter's behaviour (and errors) exactly *)
  match compile_kernel op ins od os with
  | k -> k
  | exception _ -> None

(* ------------------------------------------------------------------ *)
(* Plan construction.                                                  *)

let repr_kind = function
  | Dtype.F32 | F64 -> 0
  | I32 | I64 -> 1
  | Bool -> 2

let dummy = Nd.scalar_f Dtype.F64 0.

let build ~reuse g =
  Tel.incr "exec/plan_compile";
  let nodes = Array.of_list (Graph.nodes g) in
  let nslots = Array.length nodes in
  let slot_of_id = Hashtbl.create (2 * max 1 nslots) in
  Array.iteri (fun i (n : Graph.node) -> Hashtbl.replace slot_of_id n.id i) nodes;
  let in_slots =
    Array.map
      (fun (n : Graph.node) ->
        Array.of_list (List.map (Hashtbl.find slot_of_id) n.inputs))
      nodes
  in
  let consumers_l = Array.make nslots [] in
  Array.iteri
    (fun i ins -> Array.iter (fun j -> consumers_l.(j) <- i :: consumers_l.(j)) ins)
    in_slots;
  let consumers = Array.map (fun l -> Array.of_list (List.rev l)) consumers_l in
  (* liveness: the slot index of each buffer's last read; graph outputs (no
     consumers) live forever *)
  let last_use =
    Array.map
      (fun cs -> if Array.length cs = 0 then max_int else Array.fold_left max 0 cs)
      consumers
  in
  let pool : (int * int, Nd.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let take key =
    match Hashtbl.find_opt pool key with
    | Some ({ contents = b :: rest } as r) ->
        r := rest;
        Some b
    | _ -> None
  in
  let give key b =
    match Hashtbl.find_opt pool key with
    | Some r -> r := b :: !r
    | None -> Hashtbl.replace pool key (ref [ b ])
  in
  let values_tbl = Hashtbl.create (2 * max 1 nslots) in
  let fallbacks = ref 0 in
  let slots =
    Array.mapi
      (fun i (node : Graph.node) ->
        let decl_dtype = Conc.dtype node.out_type in
        let decl_shape = Conc.shape node.out_type in
        let is_leaf = match node.op with Op.Leaf _ -> true | _ -> false in
        let kernel =
          if is_leaf then None
          else
            compile_kernel node.op
              (Array.map
                 (fun j ->
                   let t = nodes.(j).Graph.out_type in
                   (Conc.dtype t, Conc.shape t))
                 in_slots.(i))
              decl_dtype decl_shape
        in
        if (not is_leaf) && kernel = None then incr fallbacks;
        let buffer =
          if is_leaf then dummy
          else begin
            let key = (repr_kind decl_dtype, Shape.numel decl_shape) in
            match if reuse then take key else None with
            | Some b -> { Nd.dtype = decl_dtype; shape = decl_shape; data = b.Nd.data }
            | None -> (
                (* first try storage retired by an evicted cohort member:
                   kernels fully overwrite destinations, so stale contents
                   are unobservable *)
                match Arena.take ~kind:(fst key) ~numel:(snd key) with
                | Some data -> { Nd.dtype = decl_dtype; shape = decl_shape; data }
                | None -> Nd.create decl_dtype decl_shape)
          end
        in
        (* release this node's dead inputs only after its own buffer is
           allocated, so a destination never aliases one of its inputs *)
        if reuse then
          List.iter
            (fun j ->
              let src = nodes.(j) in
              if
                last_use.(j) = i
                && match src.Graph.op with Op.Leaf _ -> false | _ -> true
              then
                let dt = Conc.dtype src.Graph.out_type in
                give
                  (repr_kind dt, Shape.numel (Conc.shape src.Graph.out_type))
                  (* the slot array is still being built; recover the buffer
                     from the values table populated below *)
                  (Hashtbl.find values_tbl src.Graph.id))
            (List.sort_uniq compare (Array.to_list in_slots.(i)));
        if not is_leaf then Hashtbl.replace values_tbl node.id buffer;
        {
          node;
          in_slots = in_slots.(i);
          kernel;
          decl_dtype;
          decl_shape;
          buffer;
          ins_buf = Array.make (Array.length in_slots.(i)) dummy;
          is_leaf;
          value = buffer;
          decl_ok = not is_leaf;
          valid = false;
        })
      nodes
  in
  Tel.incr ~by:!fallbacks "exec/plan_fallback_nodes";
  {
    graph = g;
    slots;
    slot_of_id;
    consumers;
    values_tbl;
    visited = Array.make nslots false;
  }

let fallback_nodes p =
  Array.fold_left
    (fun acc s -> if (not s.is_leaf) && s.kernel = None then acc + 1 else acc)
    0 p.slots

let slot_buffers p =
  Array.to_list p.slots
  |> List.filter_map (fun s ->
         if s.is_leaf then None else Some (s.node.Graph.id, s.buffer))

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

let inputs_decl_ok p s =
  let ok = ref true in
  Array.iter (fun j -> if not p.slots.(j).decl_ok then ok := false) s.in_slots;
  !ok

let exec_node p i =
  let s = p.slots.(i) in
  match s.kernel with
  | Some k when inputs_decl_ok p s ->
      let ib = s.ins_buf in
      Array.iteri (fun j sj -> ib.(j) <- p.slots.(sj).value) s.in_slots;
      if not (s.value == s.buffer) then begin
        s.value <- s.buffer;
        s.decl_ok <- true;
        Hashtbl.replace p.values_tbl s.node.Graph.id s.buffer
      end;
      k ib s.buffer
  | _ ->
      let ins = List.map (fun sj -> p.slots.(sj).value) (Array.to_list s.in_slots) in
      let v = Eval.eval s.node.Graph.op ins in
      s.value <- v;
      s.decl_ok <-
        Dtype.equal (Nd.dtype v) s.decl_dtype
        && Shape.equal (Nd.shape v) s.decl_shape;
      Hashtbl.replace p.values_tbl s.node.Graph.id v

let set_leaf p id v =
  let i = Hashtbl.find p.slot_of_id id in
  let s = p.slots.(i) in
  s.value <- v;
  s.decl_ok <-
    Dtype.equal (Nd.dtype v) s.decl_dtype && Shape.equal (Nd.shape v) s.decl_shape;
  s.valid <- false;
  Hashtbl.replace p.values_tbl id v

let leaf_value p id = p.slots.(Hashtbl.find p.slot_of_id id).value
let values p = p.values_tbl

let invalidate_all p =
  Array.iter (fun s -> s.valid <- false) p.slots

let invalidate p ids =
  Array.fill p.visited 0 (Array.length p.visited) false;
  let rec go i =
    if not p.visited.(i) then begin
      p.visited.(i) <- true;
      p.slots.(i).valid <- false;
      Array.iter go p.consumers.(i)
    end
  in
  List.iter
    (fun id ->
      match Hashtbl.find_opt p.slot_of_id id with Some i -> go i | None -> ())
    ids

let forward_until_bad p =
  let computed = ref 0 in
  let result = ref None in
  (try
     for i = 0 to Array.length p.slots - 1 do
       let s = p.slots.(i) in
       if not s.valid then begin
         if not s.is_leaf then begin
           exec_node p i;
           incr computed
         end;
         s.valid <- true;
         if Nd.has_bad s.value then begin
           s.valid <- false;
           let ins =
             List.map
               (fun sj -> p.slots.(sj).value)
               (Array.to_list s.in_slots)
           in
           result := Some (s.node, ins);
           raise Exit
         end
       end
     done
   with Exit -> ());
  (* one batched bump per pass, not per node: dirty-set recomputes are a
     gated deterministic work counter (see Nnsmith_bench.Metrics) *)
  if !computed > 0 then Tel.incr ~by:!computed "exec/dirty_recomputes";
  (!result, !computed)

let run_reference p binding =
  let btbl = Hashtbl.create 16 in
  List.iter
    (fun (id, v) -> if not (Hashtbl.mem btbl id) then Hashtbl.add btbl id v)
    binding;
  let any_bad = ref false in
  let kernel_runs = ref 0 in
  for i = 0 to Array.length p.slots - 1 do
    let s = p.slots.(i) in
    (match s.node.Graph.op with
    | Op.Leaf kind ->
        let v =
          match (Hashtbl.find_opt btbl s.node.Graph.id, kind) with
          | Some t, _ -> t
          | None, Op.Const_fill c ->
              Runner.tensor_of_leaf
                (Random.State.make [| 0 |])
                (Op.Const_fill c) s.node.Graph.out_type ~lo:0. ~hi:0.
          | None, (Op.Model_input | Op.Model_weight) ->
              raise (Runner.Missing_leaf s.node.Graph.id)
        in
        s.value <- v;
        s.decl_ok <-
          Dtype.equal (Nd.dtype v) s.decl_dtype
          && Shape.equal (Nd.shape v) s.decl_shape;
        Hashtbl.replace p.values_tbl s.node.Graph.id v
    | _ ->
        exec_node p i;
        incr kernel_runs);
    s.valid <- false;
    if Nd.has_bad s.value then any_bad := true
  done;
  if !kernel_runs > 0 then Tel.incr ~by:!kernel_runs "exec/kernel_runs";
  let outs =
    List.map
      (fun (n : Graph.node) ->
        (n.Graph.id, p.slots.(Hashtbl.find p.slot_of_id n.Graph.id).value))
      (Graph.outputs p.graph)
  in
  (outs, !any_bad)

(* ------------------------------------------------------------------ *)
(* Global toggle and per-domain plan cache.                            *)

(* Plain ref, like [Telemetry.set_enabled]: flipped by the CLI before any
   worker domain spawns, and domain spawn provides the happens-before. *)
let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

type cache_entry = {
  mutable ce_graph : Graph.t;
  ce_key : string;  (* content key: the graph's canonical text form *)
  mutable ce_search : t option;
  mutable ce_oracle : t option;
}

(* Cohort plan pool: the [cohort_size] most recent graphs keep their
   compiled plans alive, MRU-first, per domain.  Single-model loops hit
   the head entry by physical equality, exactly as the old one-entry
   cache did; corpus replays and cohort campaigns regenerate graphs as
   physically distinct but content-identical values, which the content
   key recognises so the replay reuses the campaign's plans instead of
   recompiling.  Evicted entries retire their slot storage to the
   {!Arena}, where the next compilation picks it up. *)
let cohort_flag = ref 4
let set_cohort_size n = cohort_flag := max 1 n
let cohort_size () = !cohort_flag

let cache : cache_entry list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Donate a retired plan's slot storage.  Buffers are deduplicated by
   physical identity (oracle plans share storage across slots); the leaf
   placeholder is excluded by the [is_leaf] guard. *)
let retire e =
  let donate p =
    let seen = ref [] in
    Array.iter
      (fun s ->
        if not s.is_leaf then begin
          let d = s.buffer.Nd.data in
          if not (List.memq d !seen) then begin
            seen := d :: !seen;
            Arena.give
              ~kind:(repr_kind s.decl_dtype)
              ~numel:(Shape.numel s.decl_shape)
              d
          end
        end)
      p.slots
  in
  Option.iter donate e.ce_search;
  Option.iter donate e.ce_oracle

let cohort_clear () =
  let slot = Domain.DLS.get cache in
  slot := [];
  Arena.clear ()

let entry_for g =
  let slot = Domain.DLS.get cache in
  let move_to_front e =
    (match !slot with
    | e0 :: _ when e0 == e -> ()
    | _ -> slot := e :: List.filter (fun x -> not (x == e)) !slot);
    e
  in
  match List.find_opt (fun e -> e.ce_graph == g) !slot with
  | Some e -> move_to_front e
  | None -> (
      let key = Graph.to_string g in
      match List.find_opt (fun e -> String.equal e.ce_key key) !slot with
      | Some e ->
          Tel.incr "exec/cohort_content_hit";
          e.ce_graph <- g;
          move_to_front e
      | None ->
          let e = { ce_graph = g; ce_key = key; ce_search = None; ce_oracle = None } in
          let cap = cohort_size () in
          let rec trim i l =
            if i >= cap then begin
              List.iter retire l;
              []
            end
            else match l with [] -> [] | x :: tl -> x :: trim (i + 1) tl
          in
          slot := trim 0 (e :: !slot);
          e)

let for_search g =
  let e = entry_for g in
  match e.ce_search with
  | Some p ->
      Tel.incr "exec/plan_hit";
      p
  | None ->
      let p = build ~reuse:false g in
      e.ce_search <- Some p;
      p

let for_oracle g =
  let e = entry_for g in
  match e.ce_oracle with
  | Some p ->
      Tel.incr "exec/plan_hit";
      p
  | None ->
      let p = build ~reuse:true g in
      e.ce_oracle <- Some p;
      p
