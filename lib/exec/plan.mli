(** Compiled per-graph execution plans.

    A plan is built once per graph and reused across every forward pass of
    that model: dense topologically-ordered value slots (no per-iteration
    hashtable), per-op kernels with precomputed broadcast/stride/reduction
    index maps, and preallocated output buffers.  Two flavours exist:

    - {!for_search}: every node keeps a private buffer (backprop reads all
      intermediate values) and a validity bit enables dirty-set re-execution —
      after an optimiser step touches leaf set L, only nodes reachable from L
      recompute.
    - {!for_oracle}: a liveness-based buffer arena — a node whose last
      consumer has run donates its buffer to later nodes of matching
      representation and element count, so a steady-state reference run
      allocates nothing.

    Results are bit-identical to the {!Nnsmith_ops.Eval} interpreter: kernels
    share their element formulas with the interpreter's (via the [_into]
    kernel variants), and any node whose declared types fail to validate at
    compile time — or whose runtime inputs stop matching their declared
    types — falls back to [Eval.eval] for that node. *)

type t

val graph : t -> Nnsmith_ir.Graph.t

val for_search : Nnsmith_ir.Graph.t -> t
(** Keep-all-buffers plan from the per-domain cohort pool (compiled on
    first request; the pool holds the plans of the {!cohort_size} most
    recent graphs, looked up by physical equality with a content-key
    fallback so a replayed graph — regenerated as a physically distinct
    but identical value — reuses the original's plans). *)

val for_oracle : Nnsmith_ir.Graph.t -> t
(** Arena plan (buffer reuse) from the per-domain cohort pool. *)

val build : reuse:bool -> Nnsmith_ir.Graph.t -> t
(** Compile a fresh plan, bypassing the cache; [reuse] enables the buffer
    arena.  Never raises — unsupported nodes get interpreter fallbacks. *)

val set_leaf : t -> int -> Nnsmith_tensor.Nd.t -> unit
(** Bind a leaf's value and mark the leaf invalid.  Does NOT propagate
    invalidity: callers follow with {!invalidate} over the changed ids (or
    {!invalidate_all} on a restart). *)

val leaf_value : t -> int -> Nnsmith_tensor.Nd.t
(** Current value of any node (used for leaves: the bound tensor). *)

val values : t -> (int, Nnsmith_tensor.Nd.t) Hashtbl.t
(** Live id -> value table, maintained across passes — the [~values]
    argument {!Nnsmith_grad.Backprop.grad_wrt_leaves} expects. *)

val invalidate_all : t -> unit

val invalidate : t -> int list -> unit
(** Mark the given node ids and every transitive consumer invalid. *)

val forward_until_bad :
  t -> (Nnsmith_ir.Graph.node * Nnsmith_tensor.Nd.t list) option * int
(** Recompute invalid slots in topological order, stopping at the first node
    whose value contains NaN/Inf (returned with its input values, and left
    invalid so it recomputes next pass).  Also returns the number of op nodes
    evaluated.  All leaves must have been bound with {!set_leaf}. *)

val run_reference :
  t ->
  (int * Nnsmith_tensor.Nd.t) list ->
  (int * Nnsmith_tensor.Nd.t) list * bool
(** Full oracle pass over a binding: every node recomputes (leaves read from
    the binding; unbound [Const_fill] leaves materialise their fill exactly
    as [Runner.run] does).  Returns the graph outputs in [Graph.outputs]
    order and whether ANY node value contained NaN/Inf.  Raises
    [Runner.Missing_leaf] / [Eval.Eval_error] at the same node, in the same
    topological position, as [Runner.run]. *)

val slot_buffers : t -> (int * Nnsmith_tensor.Nd.t) list
(** Non-leaf (node id, preallocated buffer) pairs in topological order —
    introspection for the arena-aliasing tests.  Buffers of distinct ids are
    physically shared exactly when the arena reused one. *)

val fallback_nodes : t -> int
(** Number of op nodes without a compiled kernel (interpreter fallback). *)

val enabled : unit -> bool
(** Global toggle consulted by the search and the difftest harness;
    [--no-exec-plan] clears it for A/B runs.  Defaults to [true]. *)

val set_enabled : bool -> unit

val cohort_size : unit -> int
(** Number of models whose plans the per-domain pool keeps alive
    (defaults to 4); evicted plans retire their buffers to {!Arena}. *)

val set_cohort_size : int -> unit
(** Set the pool capacity ([--cohort-size]); clamped to at least 1. *)

val cohort_clear : unit -> unit
(** Drop the calling domain's pooled plans and arena buffers — used by
    A/B benches and tests to start from a cold pool. *)
