(** Per-domain cross-plan buffer arena.

    Retired execution plans donate their slot storage here (keyed by
    representation kind and element count); newly compiled plans draw
    initial buffers from the pool before allocating.  Contents of pooled
    buffers are garbage by contract — every plan kernel fully overwrites
    its destination before it is read, so recycling cannot affect any
    computed value.  Bounded per key and in total. *)

val take : kind:int -> numel:int -> Nnsmith_tensor.Nd.data option
(** Pop a pooled buffer of the given representation kind and element
    count, if any. *)

val give : kind:int -> numel:int -> Nnsmith_tensor.Nd.data -> unit
(** Donate a buffer; silently dropped when the pool is at capacity. *)

val clear : unit -> unit
(** Drop every pooled buffer on the calling domain. *)

val retained : unit -> int
(** Number of buffers currently pooled on the calling domain. *)
