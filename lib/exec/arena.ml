(* Cross-plan buffer arena: a per-domain pool of retired plan buffers,
   keyed by (representation kind, element count).

   Plans compiled for different models in the same cohort allocate their
   slot buffers here first — a retired plan's intermediate buffers are
   exactly the sizes the next model of the same shape distribution needs,
   so steady-state plan compilation stops allocating fresh megabyte-scale
   arrays.  Tensor *contents* never survive the pool: every plan kernel is
   destination-passing and fully overwrites its output buffer before any
   consumer reads it (the same argument that makes the intra-plan liveness
   arena of {!Plan.build} sound), so recycled storage cannot change any
   computed value.

   The pool is bounded per key and in total; beyond the caps, retired
   buffers are dropped for the GC.  Per-domain (Domain.DLS) — buffers
   never cross domains, mirroring the plan cache itself. *)

module Nd = Nnsmith_tensor.Nd
module Tel = Nnsmith_telemetry.Telemetry

type pool = {
  tbl : (int * int, Nd.data list ref) Hashtbl.t;
  mutable retained : int;  (* buffers currently pooled, across keys *)
}

let per_key_cap = 8
let total_cap = 256

let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 32; retained = 0 })

let take ~kind ~numel =
  let p = Domain.DLS.get pool_key in
  match Hashtbl.find_opt p.tbl (kind, numel) with
  | Some ({ contents = b :: rest } as r) ->
      r := rest;
      p.retained <- p.retained - 1;
      Tel.incr "exec/arena_hit";
      Some b
  | _ ->
      Tel.incr "exec/arena_miss";
      None

let give ~kind ~numel (b : Nd.data) =
  let p = Domain.DLS.get pool_key in
  if p.retained < total_cap then
    match Hashtbl.find_opt p.tbl (kind, numel) with
    | Some r ->
        if List.length !r < per_key_cap then begin
          r := b :: !r;
          p.retained <- p.retained + 1
        end
    | None ->
        Hashtbl.replace p.tbl (kind, numel) (ref [ b ]);
        p.retained <- p.retained + 1

let clear () =
  let p = Domain.DLS.get pool_key in
  Hashtbl.reset p.tbl;
  p.retained <- 0

let retained () = (Domain.DLS.get pool_key).retained
