(* Versioned per-commit bench history rows, the tolerant reader, and the
   counter-based regression gate.  See history.mli. *)

module Json = Nnsmith_telemetry.Json

type row = {
  hr_schema : int;
  hr_commit : string;
  hr_parent : string option;
  hr_experiment : string;
  hr_workload : string option;
  hr_tests_per_sec : float;
  hr_digest : string;
  hr_gc_per_test : (float * float) option;
  hr_counters : Metrics.counters option;
}

let schema_version = 2

(* ------------------------------------------------------------------ *)
(* Commit identity                                                     *)

let git_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then None else Some line
  with _ -> None

let git_commit = lazy (git_line "git rev-parse --short HEAD 2>/dev/null")
let git_parent = lazy (git_line "git rev-parse --short HEAD^ 2>/dev/null")

let make_row ?gc_per_test ?counters ?workload ~experiment ~tests_per_sec
    ~digest () =
  {
    hr_schema = schema_version;
    hr_commit = Option.value ~default:"unknown" (Lazy.force git_commit);
    hr_parent = Lazy.force git_parent;
    hr_experiment = experiment;
    hr_workload = workload;
    hr_tests_per_sec = tests_per_sec;
    hr_digest = digest;
    hr_gc_per_test = gc_per_test;
    hr_counters = counters;
  }

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)

let row_to_json r =
  let opt k f v = Option.to_list (Option.map (fun x -> (k, f x)) v) in
  Json.Obj
    (("schema", Json.Num (float_of_int r.hr_schema))
     :: ("commit", Json.Str r.hr_commit)
     :: (opt "parent" (fun p -> Json.Str p) r.hr_parent
        @ [
            ("experiment", Json.Str r.hr_experiment);
            ("tests_per_sec", Json.Num r.hr_tests_per_sec);
            ("digest", Json.Str r.hr_digest);
          ]
        @ opt "workload" (fun w -> Json.Str w) r.hr_workload
        @ (match r.hr_gc_per_test with
          | None -> []
          | Some (minor, major) ->
              [
                ("gc_minor_per_test", Json.Num minor);
                ("gc_major_per_test", Json.Num major);
              ])
        @ opt "counters" Metrics.to_json r.hr_counters))

let row_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let num k = Option.bind (Json.member k j) Json.to_float in
  match (str "experiment", num "tests_per_sec") with
  | Some experiment, Some tps ->
      Some
        {
          hr_schema =
            (match Option.bind (Json.member "schema" j) Json.to_int with
            | Some v -> v
            | None -> 1);
          hr_commit = Option.value ~default:"unknown" (str "commit");
          hr_parent = str "parent";
          hr_experiment = experiment;
          hr_workload = str "workload";
          hr_tests_per_sec = tps;
          hr_digest = Option.value ~default:"" (str "digest");
          hr_gc_per_test =
            (match (num "gc_minor_per_test", num "gc_major_per_test") with
            | Some minor, Some major -> Some (minor, major)
            | _ -> None);
          hr_counters =
            Option.bind (Json.member "counters" j) Metrics.of_json;
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Tolerant reader                                                     *)

type read_result = {
  rr_rows : row list;
  rr_bad_lines : int;
  rr_torn_tail : bool;
}

let read path =
  if not (Sys.file_exists path) then
    { rr_rows = []; rr_bad_lines = 0; rr_torn_tail = false }
  else begin
    let ic = open_in_bin path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let out = ref [] in
          (try
             while true do
               out := input_line ic :: !out
             done
           with End_of_file -> ());
          List.rev !out)
    in
    let lines = List.filter (fun l -> String.trim l <> "") lines in
    let n = List.length lines in
    let rows = ref [] and bad = ref 0 and torn = ref false in
    List.iteri
      (fun i line ->
        let final = i = n - 1 in
        match Json.parse line with
        | Error _ ->
            (* an incomplete final line is a torn tail (writer killed
               mid-append), not corruption; interior garbage is counted *)
            if final then torn := true else incr bad
        | Ok j -> (
            match row_of_json j with
            | Some r -> rows := r :: !rows
            | None -> incr bad))
      lines;
    { rr_rows = List.rev !rows; rr_bad_lines = !bad; rr_torn_tail = !torn }
  end

(* ------------------------------------------------------------------ *)
(* Append + latest.json rewrite                                        *)

let append ~dir row =
  if not (Sys.file_exists dir) then
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let history = Filename.concat dir "history.jsonl" in
  let latest = Filename.concat dir "latest.json" in
  let line = Json.to_string (row_to_json row) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history in
  output_string oc (line ^ "\n");
  close_out oc;
  (* latest.json: one row per experiment, current commit only — a new
     commit's first experiment resets the file *)
  let keep =
    List.filter
      (fun r ->
        r.hr_commit = row.hr_commit && r.hr_experiment <> row.hr_experiment)
      (read latest).rr_rows
  in
  let oc = open_out latest in
  List.iter
    (fun r -> output_string oc (Json.to_string (row_to_json r) ^ "\n"))
    keep;
  output_string oc (line ^ "\n");
  close_out oc

(* ------------------------------------------------------------------ *)
(* The regression gate                                                 *)

let alloc_tolerance = 0.02

type status =
  [ `Ok | `Regressed of string list | `Skipped of string ]

type verdict = {
  v_experiment : string;
  v_workload : string option;
  v_status : status;
  v_notes : string list;
}

let pct x = 100. *. x

let compare_rows ~baseline ~current =
  let notes = ref [] and failures = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* wall-clock: informational only, never gates *)
  let tps0 = baseline.hr_tests_per_sec and tps1 = current.hr_tests_per_sec in
  note "wall-clock (advisory): %.2f -> %.2f tests/sec (%+.1f%%)" tps0 tps1
    (pct ((tps1 -. tps0) /. Float.max 1e-9 tps0));
  (match (baseline.hr_counters, current.hr_counters) with
  | Some b, Some c ->
      List.iter
        (fun (k, vb, vc) ->
          (* a counter present on only one side is a gate failure too:
             instrumentation changes must re-baseline by committing the
             new row, exactly like a value change *)
          fail "work counter %s: %d -> %d" k vb vc)
        (Metrics.work_diff b c);
      let a0 = Metrics.alloc_words b and a1 = Metrics.alloc_words c in
      let rel = (a1 -. a0) /. Float.max 1. a0 in
      if rel > alloc_tolerance then
        fail "allocation words: %.0f -> %.0f (%+.2f%%, tolerance %.0f%%)" a0
          a1 (pct rel) (pct alloc_tolerance)
      else
        note "allocation words: %.0f -> %.0f (%+.2f%%, within %.0f%%)" a0 a1
          (pct rel) (pct alloc_tolerance);
      if baseline.hr_digest <> "" && current.hr_digest <> ""
         && baseline.hr_digest <> current.hr_digest
      then note "digest changed: %s -> %s" baseline.hr_digest current.hr_digest
  | _ -> note "no counters on both rows; wall-clock advisory only");
  (!failures, List.rev !notes)

let regress ?known rows =
  (* group chronologically by experiment, preserving first-seen order *)
  let order = ref [] in
  let by_exp = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if not (Hashtbl.mem by_exp r.hr_experiment) then
        order := r.hr_experiment :: !order;
      Hashtbl.replace by_exp r.hr_experiment
        (r
        :: Option.value ~default:[] (Hashtbl.find_opt by_exp r.hr_experiment)))
    rows;
  List.rev_map
    (fun exp ->
      (* rows newest-first *)
      let rows = Option.value ~default:[] (Hashtbl.find_opt by_exp exp) in
      let current = List.hd rows in
      let earlier = List.tl rows in
      let verdict status notes =
        {
          v_experiment = exp;
          v_workload = current.hr_workload;
          v_status = status;
          v_notes = notes;
        }
      in
      match known with
      | Some names when not (List.mem exp names) ->
          verdict
            (`Skipped "experiment no longer exists; row ignored (warning)")
            []
      | _ -> (
          let comparable =
            match current.hr_workload with
            | None -> []
            | Some _ ->
                List.filter
                  (fun r -> r.hr_workload = current.hr_workload)
                  earlier
          in
          (* prefer the newest baseline that carries counters when the
             current row does; earlier-era rows can't gate counters *)
          let baseline =
            match current.hr_counters with
            | Some _ -> (
                match
                  List.find_opt (fun r -> r.hr_counters <> None) comparable
                with
                | Some r -> Some r
                | None -> List.nth_opt comparable 0)
            | None -> List.nth_opt comparable 0
          in
          match baseline with
          | None ->
              verdict
                (`Skipped
                  (if current.hr_workload = None then
                     "row has no workload key (legacy schema); cannot compare"
                   else "no earlier row with the same workload"))
                []
          | Some baseline -> (
              let failures, notes = compare_rows ~baseline ~current in
              match failures with
              | [] -> verdict `Ok notes
              | fs -> verdict (`Regressed (List.rev fs)) notes)))
    !order
