(* Deterministic work-counter capture: Gc.quick_stat deltas plus gated
   telemetry-counter deltas around one benchmark round.  See metrics.mli
   for the measurement discipline this enables. *)

module Tel = Nnsmith_telemetry.Telemetry
module Json = Nnsmith_telemetry.Json

type counters = {
  mc_minor_words : float;
  mc_major_words : float;
  mc_promoted_words : float;
  mc_work : (string * int) list;
}

(* Only counters that record deterministic work are admitted.  Everything
   time-driven stays out by omission: journal/* (heartbeats are rate
   limited by the wall clock), parallel/dropped_events (channel saturation
   depends on scheduling), fleet/* (process lifetimes).  The corpus and
   pool entries are exact names, which the prefix test also covers. *)
let work_prefixes =
  [
    "smt/";
    "gen/";
    "grad/";
    "exec/";
    "cov/";
    "corpus/saved";
    "corpus/dup_suppressed";
    "parallel/tests";
    "parallel/failures";
  ]

let is_work_counter name =
  List.exists
    (fun p ->
      String.length name >= String.length p
      && String.sub name 0 (String.length p) = p)
    work_prefixes

let gated snapshot =
  List.filter (fun (k, _) -> is_work_counter k) snapshot.Tel.counters

let capture f =
  let was_enabled = Tel.is_enabled () in
  Tel.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Tel.set_enabled was_enabled)
    (fun () ->
      let before = gated (Tel.snapshot ()) in
      (* Normalize the minor-heap fill: with an empty minor heap, the
         collection (and therefore promotion) points inside [f] are a pure
         function of [f]'s allocation sequence, so even the promoted-words
         delta is bit-stable across back-to-back runs. *)
      Gc.full_major ();
      let g0 = Gc.quick_stat () in
      (* [quick_stat] word counters only refresh at collection boundaries
         (OCaml 5 aggregates per-domain stats at GC points), so a round
         that ends between collections would under-report.  [minor_words]
         samples the allocation pointer directly and is exact. *)
      let m0 = Gc.minor_words () in
      let x = f () in
      let m1 = Gc.minor_words () in
      let g1 = Gc.quick_stat () in
      let after = gated (Tel.snapshot ()) in
      let base = Hashtbl.create 32 in
      List.iter (fun (k, v) -> Hashtbl.replace base k v) before;
      let work =
        List.filter_map
          (fun (k, v) ->
            let d =
              v - Option.value ~default:0 (Hashtbl.find_opt base k)
            in
            if d <> 0 then Some (k, d) else None)
          after
      in
      ( x,
        {
          mc_minor_words = m1 -. m0;
          mc_major_words = g1.Gc.major_words -. g0.Gc.major_words;
          mc_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
          mc_work = work;
        } ))

let alloc_words c =
  c.mc_minor_words +. c.mc_major_words -. c.mc_promoted_words

let work_diff a b =
  let keys = Hashtbl.create 32 in
  let note (k, _) = Hashtbl.replace keys k () in
  List.iter note a.mc_work;
  List.iter note b.mc_work;
  let value w k =
    Option.value ~default:0 (Option.map snd (List.find_opt (fun (n, _) -> n = k) w))
  in
  Hashtbl.fold (fun k () acc -> k :: acc) keys []
  |> List.sort compare
  |> List.filter_map (fun k ->
         let va = value a.mc_work k and vb = value b.mc_work k in
         if va <> vb then Some (k, va, vb) else None)

let to_json c =
  Json.Obj
    [
      ("minor_words", Json.Num c.mc_minor_words);
      ("major_words", Json.Num c.mc_major_words);
      ("promoted_words", Json.Num c.mc_promoted_words);
      ( "work",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) c.mc_work)
      );
    ]

let of_json j =
  let num k = Option.bind (Json.member k j) Json.to_float in
  match (num "minor_words", num "major_words", num "promoted_words") with
  | Some minor, Some major, Some promoted ->
      let work =
        match Json.member "work" j with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v))
              fields
        | _ -> []
      in
      Some
        {
          mc_minor_words = minor;
          mc_major_words = major;
          mc_promoted_words = promoted;
          mc_work = List.sort compare work;
        }
  | _ -> None
