(** Deterministic work-counter capture for benchmark experiments.

    Wall-clock on a noisy shared core needs a >15% tolerance to avoid
    flaking, which is blunt enough to wave real regressions through.  The
    quantities captured here are different: they count {e work}, not time —
    allocation words from [Gc.quick_stat] deltas and the fuzzer's own
    telemetry counters (solver checks, cache hits/misses, component solves,
    search steps, compiled-kernel runs, dirty-set recomputes, arena reuses,
    generator accept/reject tallies).  Campaigns are fixed-seed
    bit-identical, so these counters are bit-stable across runs and across
    machines, and a CI gate can demand {e exact equality} on them (and a
    ~2% band on allocation words) instead of tolerating 15% drift.

    [capture f] brackets one deterministic round: it forces a major GC so
    the minor-heap fill at entry cannot shift promotion points between
    otherwise identical runs, snapshots [Gc.quick_stat] and the current
    domain's telemetry counters, runs [f], and returns the deltas.  Only
    counters under {!work_prefixes} are kept — time-driven counters
    (journal heartbeats, best-effort channel sheds) are excluded because
    they are {e not} functions of the workload. *)

type counters = {
  mc_minor_words : float;  (** words allocated in the minor heap *)
  mc_major_words : float;  (** words allocated in the major heap,
                               including promotions *)
  mc_promoted_words : float;  (** words promoted minor -> major *)
  mc_work : (string * int) list;
      (** non-zero deltas of gated telemetry counters, sorted by name *)
}

val work_prefixes : string list
(** Counter-name prefixes admitted into {!counters.mc_work}: deterministic
    work recorders only ([smt/], [gen/], [grad/], [exec/], [cov/], the
    corpus save/dedup tallies and the pool's test/failure totals).  An
    exact counter name is a valid prefix of itself. *)

val is_work_counter : string -> bool
(** Whether a counter name falls under {!work_prefixes}. *)

val capture : (unit -> 'a) -> 'a * counters
(** Run the thunk and return its result plus the work it performed.
    Telemetry recording is forced on for the duration (and restored
    afterwards).  Exceptions from the thunk propagate. *)

val alloc_words : counters -> float
(** Total words freshly allocated: [minor + major - promoted] (promoted
    words are counted in both the minor and major totals). *)

val work_diff : counters -> counters -> (string * int * int) list
(** [(name, left, right)] for every work counter whose values differ
    between the two captures; a counter absent on one side reads as [0].
    Sorted by name; [[]] means the two captures did identical work. *)

val to_json : counters -> Nnsmith_telemetry.Json.t
(** [Obj] with [minor_words]/[major_words]/[promoted_words] numbers and a
    nested [work] object, keys in sorted order. *)

val of_json : Nnsmith_telemetry.Json.t -> counters option
(** Inverse of {!to_json}; [None] when required fields are missing or
    mistyped.  Unknown extra fields are ignored (schema growth). *)
