(** Per-commit benchmark history: the versioned row schema behind
    [bench/history.jsonl] and [bench/latest.json], a torn-tail-tolerant
    reader, and the counter-based regression gate.

    Every appending bench experiment records one {!row} per run.  Schema
    version 2 rows carry the commit {e and its parent} (so the dashboard
    can mark gaps in per-commit history), a workload key (rows are only
    comparable at identical workloads), and the deterministic
    {!Metrics.counters} captured for the experiment.  Version 1 rows —
    everything recorded before the counter era — are still read: they
    simply have no workload, parent or counters, and the gate skips them
    with a note instead of failing.

    The regress gate inverts the old wall-clock discipline: work counters
    must match the baseline row {e exactly}, allocation words may grow by
    at most {!alloc_tolerance}, and tests/sec is demoted to a non-gating
    advisory column.  A deliberate perf-relevant change therefore shows up
    as a gate failure until the new history row is committed — the
    snapshot-test workflow, made sound by counter determinism. *)

type row = {
  hr_schema : int;  (** 1 for legacy rows, {!schema_version} for new ones *)
  hr_commit : string;
  hr_parent : string option;  (** parent commit; [None] on legacy rows *)
  hr_experiment : string;
  hr_workload : string option;
      (** comparability key, e.g. ["tests=80"]; rows with different
          workloads are never compared *)
  hr_tests_per_sec : float;  (** advisory wall-clock throughput *)
  hr_digest : string;  (** workload outcome digest (bit-identity check) *)
  hr_gc_per_test : (float * float) option;
      (** legacy (minor, major) words per test *)
  hr_counters : Metrics.counters option;  (** deterministic work counters *)
}

val schema_version : int
(** Current row schema version: [2]. *)

val make_row :
  ?gc_per_test:float * float ->
  ?counters:Metrics.counters ->
  ?workload:string ->
  experiment:string ->
  tests_per_sec:float ->
  digest:string ->
  unit ->
  row
(** A {!schema_version} row stamped with the current git commit and its
    parent (["unknown"] / [None] outside a git checkout). *)

val row_to_json : row -> Nnsmith_telemetry.Json.t

val row_of_json : Nnsmith_telemetry.Json.t -> row option
(** [None] when the mandatory fields ([experiment], [tests_per_sec]) are
    missing.  Rows with no [schema] field parse as version 1; rows from
    future schema versions are read best-effort rather than dropped. *)

type read_result = {
  rr_rows : row list;  (** parsed rows, file order (= chronological) *)
  rr_bad_lines : int;  (** non-final unparseable/invalid lines skipped *)
  rr_torn_tail : bool;
      (** final line was not complete JSON (writer killed mid-append);
          all preceding rows are intact and kept *)
}

val read : string -> read_result
(** Tolerant reader, mirroring the journal's discipline: a missing file is
    an empty history, a torn final line is reported but never poisons the
    intact prefix, and bad interior lines are counted and skipped. *)

val append : dir:string -> row -> unit
(** Append the row to [dir/history.jsonl] and rewrite [dir/latest.json] to
    hold one row per experiment for the row's commit (a new commit's first
    experiment resets the file).  Creates [dir] if needed. *)

(** {1 The regression gate} *)

val alloc_tolerance : float
(** Maximum allowed relative growth in allocation words vs baseline:
    [0.02] (2%). *)

type status =
  [ `Ok  (** within the gate (possibly with advisory notes) *)
  | `Regressed of string list  (** gate failures, one message each *)
  | `Skipped of string  (** no comparable baseline; reason given *) ]

type verdict = {
  v_experiment : string;
  v_workload : string option;
  v_status : status;
  v_notes : string list;  (** advisory, non-gating observations *)
}

val regress : ?known:string list -> row list -> verdict list
(** Compare each experiment's newest row against its baseline: the newest
    earlier row with the same experiment and workload key (preferring rows
    that carry counters).  Gate: work counters exactly equal; allocation
    words within {!alloc_tolerance} growth.  Wall-clock deltas and
    counter-set changes (keys added/removed) are reported as notes.

    Rows whose experiment is not in [known] (when given) are skipped with
    a warning — a renamed or retired experiment must not fail the gate
    forever.  Rows in any [`Skipped] state never fail the gate. *)
