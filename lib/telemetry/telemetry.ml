(* Telemetry registry with per-domain sinks.

   Every recording entry point (incr/observe/with_span/event) writes into
   the *current domain's* sink, held in domain-local storage: worker domains
   spawned by [Nnsmith_parallel.Pool] accumulate into private tables with no
   synchronisation on the hot path, and the pool folds each worker's sink
   into the spawning domain's sink at join time via [merge_sink].  On a
   single domain this behaves exactly like the old process-global registry:
   the main domain owns one sink for the whole process. *)

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled
let now_ms () = Unix.gettimeofday () *. 1000.

(* ------------------------------------------------------------------ *)
(* Histogram buckets: log2, exponent e covers (2^(e-1), 2^e].          *)

let h_lo = -10
let h_hi = 20
let bucket_range = (h_lo, h_hi)
let h_nbuckets = h_hi - h_lo + 1

let bucket_exponent v =
  if v <= 0. then h_lo
  else
    let e = int_of_float (Float.ceil (Float.log2 v)) in
    if e < h_lo then h_lo else if e > h_hi then h_hi else e

type histo = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

let fresh_histo () =
  {
    h_count = 0;
    h_sum = 0.;
    h_min = infinity;
    h_max = neg_infinity;
    h_buckets = Array.make h_nbuckets 0;
  }

type span_stat = {
  mutable s_count : int;
  mutable s_total : float;
  mutable s_self : float;
}

type frame = { f_name : string; f_start : float; mutable f_child : float }

type event_view = {
  ev_seq : int;
  ev_at_ms : float;
  ev_kind : string;
  ev_msg : string;
}

(* One domain's private tables. *)
type sink = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histo) Hashtbl.t;
  spans : (string, span_stat) Hashtbl.t;
  mutable stack : frame list;
  ring : event_view Queue.t;
  mutable next_seq : int;
  mutable ring_capacity : int;
  mutable epoch : float;
}

let fresh_sink () =
  {
    counters = Hashtbl.create 64;
    histograms = Hashtbl.create 32;
    spans = Hashtbl.create 32;
    stack = [];
    ring = Queue.create ();
    next_seq = 0;
    ring_capacity = 64;
    epoch = now_ms ();
  }

let dls : sink Domain.DLS.key = Domain.DLS.new_key fresh_sink
let cur () = Domain.DLS.get dls
let current_sink = cur

(* ------------------------------------------------------------------ *)
(* Counters.                                                           *)

let incr ?(by = 1) name =
  if Atomic.get enabled then
    let s = cur () in
    match Hashtbl.find_opt s.counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace s.counters name (ref by)

let counter_value name =
  match Hashtbl.find_opt (cur ()).counters name with
  | Some r -> !r
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Histograms.                                                         *)

let observe name v =
  if Atomic.get enabled then begin
    let s = cur () in
    let h =
      match Hashtbl.find_opt s.histograms name with
      | Some h -> h
      | None ->
          let h = fresh_histo () in
          Hashtbl.replace s.histograms name h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_exponent v - h_lo in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1
  end

(* ------------------------------------------------------------------ *)
(* Spans.                                                              *)

let span_stat s name =
  match Hashtbl.find_opt s.spans name with
  | Some st -> st
  | None ->
      let st = { s_count = 0; s_total = 0.; s_self = 0. } in
      Hashtbl.replace s.spans name st;
      st

let with_span name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let s = cur () in
    let fr = { f_name = name; f_start = now_ms (); f_child = 0. } in
    s.stack <- fr :: s.stack;
    let finish () =
      let elapsed = now_ms () -. fr.f_start in
      (match s.stack with
      | top :: rest when top == fr -> s.stack <- rest
      | _ ->
          (* an escaping exception skipped inner finishes; drop every frame
             above ours as well as ours *)
          let rec unwind = function
            | top :: rest -> if top == fr then rest else unwind rest
            | [] -> []
          in
          s.stack <- unwind s.stack);
      (match s.stack with
      | parent :: _ -> parent.f_child <- parent.f_child +. elapsed
      | [] -> ());
      let st = span_stat s fr.f_name in
      st.s_count <- st.s_count + 1;
      st.s_total <- st.s_total +. elapsed;
      st.s_self <- st.s_self +. (elapsed -. fr.f_child)
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end

let timed name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = now_ms () in
    match f () with
    | r ->
        observe name (now_ms () -. t0);
        r
    | exception e ->
        observe name (now_ms () -. t0);
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Event ring buffer.                                                  *)

let push_event s ~at_ms kind msg =
  Queue.push
    { ev_seq = s.next_seq; ev_at_ms = at_ms; ev_kind = kind; ev_msg = msg }
    s.ring;
  s.next_seq <- s.next_seq + 1;
  while Queue.length s.ring > s.ring_capacity do
    ignore (Queue.pop s.ring)
  done

let event kind msg =
  if Atomic.get enabled then
    let s = cur () in
    push_event s ~at_ms:(now_ms () -. s.epoch) kind msg

let set_ring_capacity n =
  let s = cur () in
  s.ring_capacity <- max 1 n;
  Queue.clear s.ring

(* ------------------------------------------------------------------ *)
(* Reset.                                                              *)

let reset () =
  let s = cur () in
  Hashtbl.reset s.counters;
  Hashtbl.reset s.histograms;
  Hashtbl.reset s.spans;
  s.stack <- [];
  Queue.clear s.ring;
  s.next_seq <- 0;
  s.epoch <- now_ms ()

(* ------------------------------------------------------------------ *)
(* Merging (worker sink -> this domain's sink, at pool join).          *)

let merge_sink (w : sink) =
  let s = cur () in
  Hashtbl.iter
    (fun name r ->
      match Hashtbl.find_opt s.counters name with
      | Some dst -> dst := !dst + !r
      | None -> Hashtbl.replace s.counters name (ref !r))
    w.counters;
  Hashtbl.iter
    (fun name h ->
      let dst =
        match Hashtbl.find_opt s.histograms name with
        | Some dst -> dst
        | None ->
            let dst = fresh_histo () in
            Hashtbl.replace s.histograms name dst;
            dst
      in
      dst.h_count <- dst.h_count + h.h_count;
      dst.h_sum <- dst.h_sum +. h.h_sum;
      if h.h_min < dst.h_min then dst.h_min <- h.h_min;
      if h.h_max > dst.h_max then dst.h_max <- h.h_max;
      Array.iteri
        (fun i c -> dst.h_buckets.(i) <- dst.h_buckets.(i) + c)
        h.h_buckets)
    w.histograms;
  Hashtbl.iter
    (fun name st ->
      let dst = span_stat s name in
      dst.s_count <- dst.s_count + st.s_count;
      dst.s_total <- dst.s_total +. st.s_total;
      dst.s_self <- dst.s_self +. st.s_self)
    w.spans;
  (* Events keep their wall-clock order: the worker's timestamps are
     rebased from its epoch onto ours, then appended through the normal
     ring (fresh seq numbers, capacity enforced). *)
  let offset = w.epoch -. s.epoch in
  Queue.iter
    (fun e -> push_event s ~at_ms:(e.ev_at_ms +. offset) e.ev_kind e.ev_msg)
    w.ring

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type histo_view = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;
  hv_max : float;
  hv_buckets : (int * int) list;
}

type span_view = { sv_count : int; sv_total_ms : float; sv_self_ms : float }

type snapshot = {
  at_ms : float;
  counters : (string * int) list;
  histograms : (string * histo_view) list;
  spans : (string * span_view) list;
  events : event_view list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)

let snapshot () : snapshot =
  let s = cur () in
  {
    at_ms = now_ms () -. s.epoch;
    counters = sorted_bindings s.counters (fun r -> !r);
    histograms =
      sorted_bindings s.histograms (fun h ->
          let buckets = ref [] in
          for i = h_nbuckets - 1 downto 0 do
            if h.h_buckets.(i) > 0 then
              buckets := (i + h_lo, h.h_buckets.(i)) :: !buckets
          done;
          {
            hv_count = h.h_count;
            hv_sum = h.h_sum;
            hv_min = h.h_min;
            hv_max = h.h_max;
            hv_buckets = !buckets;
          });
    spans =
      sorted_bindings s.spans (fun st ->
          {
            sv_count = st.s_count;
            sv_total_ms = st.s_total;
            sv_self_ms = st.s_self;
          });
    events = List.of_seq (Queue.to_seq s.ring);
  }

(* ------------------------------------------------------------------ *)
(* JSONL export / import.                                              *)

let json_of_snapshot (s : snapshot) : Json.t =
  let num f = Json.Num f in
  let inum i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("at_ms", num s.at_ms);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, inum v)) s.counters));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
               ( k,
                 Json.Obj
                   [
                     ("count", inum h.hv_count);
                     ("sum", num h.hv_sum);
                     ("min", num h.hv_min);
                     ("max", num h.hv_max);
                     ( "buckets",
                       Json.Obj
                         (List.map
                            (fun (e, c) -> (string_of_int e, inum c))
                            h.hv_buckets) );
                   ] ))
             s.histograms) );
      ( "spans",
        Json.Obj
          (List.map
             (fun (k, sp) ->
               ( k,
                 Json.Obj
                   [
                     ("count", inum sp.sv_count);
                     ("total_ms", num sp.sv_total_ms);
                     ("self_ms", num sp.sv_self_ms);
                   ] ))
             s.spans) );
      ( "events",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("seq", inum e.ev_seq);
                   ("at_ms", num e.ev_at_ms);
                   ("kind", Json.Str e.ev_kind);
                   ("msg", Json.Str e.ev_msg);
                 ])
             s.events) );
    ]

let to_jsonl s = Json.to_string (json_of_snapshot s)

exception Bad of string

let get name j =
  match Json.member name j with
  | Some v -> v
  | None -> raise (Bad ("missing key " ^ name))

let fnum j =
  match Json.to_float j with
  | Some f -> f
  | None -> raise (Bad "expected a number")

let fint j = int_of_float (fnum j)

let fstr j =
  match Json.to_str j with
  | Some s -> s
  | None -> raise (Bad "expected a string")

let fobj = function
  | Json.Obj kvs -> kvs
  | _ -> raise (Bad "expected an object")

let farr = function Json.Arr xs -> xs | _ -> raise (Bad "expected an array")

let snapshot_of_json j : snapshot =
  {
    at_ms = fnum (get "at_ms" j);
    counters = List.map (fun (k, v) -> (k, fint v)) (fobj (get "counters" j));
    histograms =
      List.map
        (fun (k, h) ->
          ( k,
            {
              hv_count = fint (get "count" h);
              hv_sum = fnum (get "sum" h);
              hv_min = fnum (get "min" h);
              hv_max = fnum (get "max" h);
              hv_buckets =
                List.map
                  (fun (e, c) ->
                    match int_of_string_opt e with
                    | Some e -> (e, fint c)
                    | None -> raise (Bad ("bad bucket exponent " ^ e)))
                  (fobj (get "buckets" h));
            } ))
        (fobj (get "histograms" j));
    spans =
      List.map
        (fun (k, sp) ->
          ( k,
            {
              sv_count = fint (get "count" sp);
              sv_total_ms = fnum (get "total_ms" sp);
              sv_self_ms = fnum (get "self_ms" sp);
            } ))
        (fobj (get "spans" j));
    events =
      List.map
        (fun e ->
          {
            ev_seq = fint (get "seq" e);
            ev_at_ms = fnum (get "at_ms" e);
            ev_kind = fstr (get "kind" e);
            ev_msg = fstr (get "msg" e);
          })
        (farr (get "events" j));
  }

let snapshot_of_jsonl line =
  match Json.parse line with
  | Error m -> Error m
  | Ok j -> ( try Ok (snapshot_of_json j) with Bad m -> Error m)

let append_jsonl path s =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (to_jsonl s);
  output_char oc '\n';
  close_out oc

type jsonl_read = {
  jr_snapshots : snapshot list;  (** in file order *)
  jr_errors : (int * string) list;  (** (1-based line, message) *)
}

let read_jsonl path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let snaps = ref [] and errs = ref [] and lineno = ref 0 in
          (try
             while true do
               let line = input_line ic in
               (* [incr] here is this module's counter bump, not Stdlib's *)
               lineno := !lineno + 1;
               if String.trim line <> "" then
                 match snapshot_of_jsonl line with
                 | Ok s -> snaps := s :: !snaps
                 | Error m -> errs := (!lineno, m) :: !errs
             done
           with End_of_file -> ());
          Ok
            { jr_snapshots = List.rev !snaps; jr_errors = List.rev !errs })

(* ------------------------------------------------------------------ *)
(* Human-readable table.                                               *)

let render_table (s : snapshot) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "== telemetry @ %.1f ms ==\n" s.at_ms;
  if s.counters <> [] then begin
    Printf.bprintf b "counters:\n";
    List.iter
      (fun (k, v) -> Printf.bprintf b "  %-36s %10d\n" k v)
      s.counters
  end;
  if s.spans <> [] then begin
    Printf.bprintf b "spans:%32s %8s %12s %12s\n" "" "count" "total_ms"
      "self_ms";
    List.iter
      (fun (k, sp) ->
        Printf.bprintf b "  %-36s %8d %12.2f %12.2f\n" k sp.sv_count
          sp.sv_total_ms sp.sv_self_ms)
      s.spans
  end;
  if s.histograms <> [] then begin
    Printf.bprintf b "histograms:%27s %8s %12s %10s %10s\n" "" "count" "sum"
      "min" "max";
    List.iter
      (fun (k, h) ->
        Printf.bprintf b "  %-36s %8d %12.2f %10.3f %10.3f\n" k h.hv_count
          h.hv_sum h.hv_min h.hv_max;
        let cells =
          List.map
            (fun (e, c) -> Printf.sprintf "<=2^%d:%d" e c)
            h.hv_buckets
        in
        if cells <> [] then
          Printf.bprintf b "      %s\n" (String.concat " " cells))
      s.histograms
  end;
  if s.events <> [] then begin
    Printf.bprintf b "events (last %d):\n" (List.length s.events);
    List.iter
      (fun e ->
        Printf.bprintf b "  [%d] %9.1fms %-10s %s\n" e.ev_seq e.ev_at_ms
          e.ev_kind e.ev_msg)
      s.events
  end;
  Buffer.contents b
