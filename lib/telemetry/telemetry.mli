(** Fuzzer-wide telemetry: named monotonic counters, log-scale histograms,
    hierarchical spans, a bounded ring of notable events, and snapshot export
    as a human-readable table or JSONL (one line per snapshot, stable key
    order).

    The registry keeps one private {e sink} per domain (domain-local
    storage): every layer — solver, generator, gradient search, harness —
    reports into the tables of the domain it runs on, with no hot-path
    synchronisation.  On a single domain this is indistinguishable from a
    process-global registry; worker domains spawned by
    [Nnsmith_parallel.Pool] accumulate locally and are folded into the
    spawning domain's sink at join time via {!merge_sink}.  All recording
    entry points are no-ops (no allocation, no clock read) while telemetry
    is disabled, and [reset] rewinds the current domain's sink for the next
    campaign. *)

val set_enabled : bool -> unit
(** Globally enable/disable recording (default: enabled).  Disabled paths
    cost one mutable-bool read. *)

val is_enabled : unit -> bool

val now_ms : unit -> float
(** The shared wall-clock helper, in milliseconds.  Campaigns, the gradient
    search and the benchmarks all read this one clock so their timestamps
    are comparable. *)

val reset : unit -> unit
(** Drop the current domain's counters, histograms, spans and events, and
    rewind its snapshot epoch.  Call at the start of each campaign (like
    [Coverage.reset]). *)

(** {1 Per-domain sinks}

    One sink per domain, created on first use.  A freshly spawned domain
    starts with empty tables; a finished worker's sink can be handed to the
    spawning domain and folded in with {!merge_sink}. *)

type sink
(** A domain's private telemetry tables. *)

val current_sink : unit -> sink
(** The calling domain's sink.  Hand it to another domain only after this
    domain has stopped recording (e.g. as a worker's return value). *)

val merge_sink : sink -> unit
(** Fold a quiescent worker sink into the calling domain's sink: counters,
    histogram buckets and span statistics are added; events are rebased
    onto this domain's epoch and appended through the ring.  Span {e self}
    times merge additively, so merged self-time sums CPU time across
    domains (it can exceed the wall clock). *)

(** {1 Counters} *)

val incr : ?by:int -> string -> unit
(** Bump a named monotonic counter (created on first use). *)

val counter_value : string -> int
(** Current value; [0] for a counter never bumped. *)

(** {1 Histograms}

    Log-scale histograms: the bucket with exponent [e] holds observations in
    [(2^(e-1), 2^e]]; exponents are clamped to [bucket_range].  Suitable for
    latencies in milliseconds and solver iteration counts. *)

val observe : string -> float -> unit
(** Record one observation into the named histogram (created on first
    use). *)

val bucket_exponent : float -> int
(** The (clamped) bucket exponent an observation falls into — exposed so
    tests can pin the bucket boundaries. *)

val bucket_range : int * int
(** Inclusive [(lo, hi)] exponent range; values outside are clamped. *)

(** {1 Spans}

    Hierarchical timed regions: [with_span "gen/insert_op" f] runs [f] and
    accumulates per-name count, total time and self time (total minus time
    spent in nested spans).  Re-entrant and exception-safe. *)

val with_span : string -> (unit -> 'a) -> 'a

val timed : string -> (unit -> 'a) -> 'a
(** Like [with_span] but records the duration into the histogram of the same
    name instead of the span table. *)

(** {1 Event ring buffer}

    The last-N notable events (generation failures, solver timeouts, crash
    dedup keys, ...).  Oldest entries are evicted once the buffer is full. *)

val event : string -> string -> unit
(** [event kind msg] appends one event. *)

val set_ring_capacity : int -> unit
(** Resize the ring (default 64); drops currently buffered events. *)

(** {1 Snapshots and export} *)

type histo_view = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;
  hv_max : float;
  hv_buckets : (int * int) list;  (** (bucket exponent, count); sorted *)
}

type span_view = { sv_count : int; sv_total_ms : float; sv_self_ms : float }

type event_view = {
  ev_seq : int;  (** monotonically increasing across evictions *)
  ev_at_ms : float;  (** relative to the last [reset] *)
  ev_kind : string;
  ev_msg : string;
}

type snapshot = {
  at_ms : float;  (** snapshot time relative to the last [reset] *)
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * histo_view) list;  (** sorted by name *)
  spans : (string * span_view) list;  (** sorted by name *)
  events : event_view list;  (** oldest first *)
}

val snapshot : unit -> snapshot

val to_jsonl : snapshot -> string
(** One JSON object on one line, keys in stable (sorted) order — suitable
    for appending to a [.jsonl] trajectory file. *)

val snapshot_of_jsonl : string -> (snapshot, string) result
(** Parse a line produced by {!to_jsonl} back into a snapshot. *)

val append_jsonl : string -> snapshot -> unit
(** Append [to_jsonl snapshot] plus a newline to the given file path. *)

type jsonl_read = {
  jr_snapshots : snapshot list;  (** in file order *)
  jr_errors : (int * string) list;  (** (1-based line, message) *)
}

val read_jsonl : string -> (jsonl_read, string) result
(** Parse a [.jsonl] trajectory file: good lines become snapshots, bad
    lines are reported with their line numbers (blank lines are skipped).
    [Error] only when the file cannot be opened.  The single reader shared
    by [nnsmith stats] and the dashboard. *)

val render_table : snapshot -> string
(** Human-readable table (the [nnsmith stats] output). *)
