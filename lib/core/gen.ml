(** NNSmith's model generator: incremental, valid-by-construction symbolic
    graph generation (Algorithm 1) with attribute binning (Algorithm 2),
    followed by concretisation against the solver's model. *)

module Expr = Nnsmith_smt.Expr
module Formula = Nnsmith_smt.Formula
module Solver = Nnsmith_smt.Solver
module Model = Nnsmith_smt.Model
module Dtype = Nnsmith_tensor.Dtype
module Op = Nnsmith_ir.Op
module Sym = Nnsmith_ir.Ttype.Sym
module Conc = Nnsmith_ir.Ttype.Conc
module Graph = Nnsmith_ir.Graph
module Spec = Nnsmith_ops.Spec
module Tel = Nnsmith_telemetry.Telemetry

exception Gen_failure of string

(* ------------------------------------------------------------------ *)
(* Symbolic graph under construction.                                  *)

type snode = {
  id : int;
  op : Expr.t Op.t option;  (** [None] while still a placeholder *)
  inputs : int list;
  out_type : Sym.t;
  sig_entry : Dtype.t * int;
      (** cached (dtype, rank) of [out_type], recomputed only when the node
          is rewritten — signatures are assembled once per sampled combo
          instead of walking the symbolic type each time *)
  weight_only : bool;
      (** placeholder must finalise as a weight (e.g. a Conv2d kernel) *)
}

type state = {
  cfg : Config.t;
  rng : Random.State.t;
  solver : Solver.t;
  templates : Spec.compiled list;
      (** [cfg.templates] compiled once per generation (memoized accepts) *)
  mutable nodes : snode list;  (** reverse insertion order *)
  mutable next_id : int;
  mutable op_count : int;
}

let node_list st = List.rev st.nodes

let placeholders st =
  List.filter (fun n -> n.op = None && not n.weight_only) (node_list st)

let replace_node st id f =
  st.nodes <- List.map (fun n -> if n.id = id then f n else n) st.nodes

let numel_cap st (t : Sym.t) =
  Formula.(Sym.numel t <= Expr.int st.cfg.max_numel)

(* Fresh placeholder: symbolic dims constrained positive and capped. *)
let add_placeholder ?(weight_only = false) st (t : Sym.t) : snode =
  let n =
    {
      id = st.next_id;
      op = None;
      inputs = [];
      out_type = t;
      sig_entry = (Sym.dtype t, Sym.rank t);
      weight_only;
    }
  in
  st.next_id <- st.next_id + 1;
  st.nodes <- n :: st.nodes;
  Solver.assert_all st.solver (Spec.out_positive t @ [ numel_cap st t ]);
  n

let random_leaf_type st =
  let dtype = Spec.pick st.rng st.cfg.leaf_dtypes in
  let rank =
    (* rank-4 tensors unlock Conv/Pool; scalars exercise the paper's
       scalar-handling bug class *)
    match Random.State.int st.rng 10 with
    | 0 -> 0
    | 1 -> 1
    | 2 | 3 -> 2
    | 4 | 5 -> 3
    | _ -> 4
  in
  Sym.fresh ~prefix:"ph" dtype rank

let add_op_node st (inst : Spec.instance) ~inputs : snode =
  let n =
    {
      id = st.next_id;
      op = Some inst.op;
      inputs;
      out_type = inst.out_type;
      sig_entry = (Sym.dtype inst.out_type, Sym.rank inst.out_type);
      weight_only = false;
    }
  in
  st.next_id <- st.next_id + 1;
  st.nodes <- n :: st.nodes;
  st.op_count <- st.op_count + 1;
  n

(* ------------------------------------------------------------------ *)
(* Algorithm 1: forward and backward insertion.                        *)

(* Random input combination from the existing nodes (with replacement, so
   diamonds are possible). *)
let sample_combo st arity =
  let nodes = Array.of_list (List.filter (fun n -> not n.weight_only) (node_list st)) in
  if Array.length nodes = 0 then None
  else
    Some
      (List.init arity (fun _ ->
           nodes.(Random.State.int st.rng (Array.length nodes))))

(* Constraints every inserted operator must satisfy: its [requires], output
   dims >= 1 (Algorithm 1 line 4) and the element-count cap. *)
let insertion_constraints st (inst : Spec.instance) =
  inst.requires
  @ Spec.out_positive inst.out_type
  @ [ numel_cap st inst.out_type ]
  @ List.concat_map
      (fun t -> Spec.out_positive t @ [ numel_cap st t ])
      inst.extra_inputs

(* Sound per-op feasibility pre-screen: consult the template's rule on the
   abstract input-shape signature (dtype + interval bounds of every input
   dim under the accumulated constraints) before paying for a solver probe.
   Consulted only after [forward] ran, so the rng stream is identical with
   the screen on or off; a [false] answer proves every instantiation of the
   signature unsatisfiable, so the skipped probe could only have answered
   [false] too — no generation decision changes. *)
let op_feasible st (tpl : Spec.compiled) combo =
  (not (Solver.prescreen_enabled ()))
  || tpl.c_base.Spec.t_feas = Spec.Feas_none
  ||
  let sg =
    List.map
      (fun n ->
        ( Sym.dtype n.out_type,
          List.map (Solver.screen_interval st.solver) n.out_type.Sym.dims ))
      combo
  in
  Spec.feasible tpl sg

let forward_insert st (tpl : Spec.compiled) : bool =
  let rec try_combo k =
    if k = 0 then false
    else begin
      Tel.incr "gen/forward_attempts";
      match sample_combo st tpl.c_base.t_arity with
      | None -> false
      | Some combo ->
          if not (tpl.c_accepts (List.map (fun n -> n.sig_entry) combo))
          then begin
            Tel.incr "gen/reject/signature";
            try_combo (k - 1)
          end
          else begin
            let types = List.map (fun n -> n.out_type) combo in
            match tpl.c_base.forward st.rng types with
            | None ->
                Tel.incr "gen/reject/forward_none";
                try_combo (k - 1)
            | Some inst ->
                if not (op_feasible st tpl combo) then begin
                  Tel.incr "gen/reject/solver";
                  Tel.incr "gen/prescreen/op_infeasible";
                  try_combo (k - 1)
                end
                else if
                  Solver.try_add_constraints st.solver
                    (insertion_constraints st inst)
                then begin
                  Tel.incr "gen/forward_ok";
                  let extra =
                    List.map
                      (fun t -> (add_placeholder ~weight_only:true st t).id)
                      inst.extra_inputs
                  in
                  ignore
                    (add_op_node st inst
                       ~inputs:(List.map (fun n -> n.id) combo @ extra));
                  true
                end
                else begin
                  Tel.incr "gen/reject/solver";
                  try_combo (k - 1)
                end
          end
    end
  in
  try_combo st.cfg.combo_tries

(* Input positions that must finalise as weights, by operator: Conv2d's
   kernel is a parameter in PyTorch, never a model input. *)
let weight_slots : 'a Op.t -> int list = function
  | Op.Conv2d _ -> [ 1 ]
  | _ -> []

let backward_insert st (tpl : Spec.compiled) : bool =
  match tpl.c_base.backward with
  | None -> false
  | Some backward -> (
      match placeholders st with
      | [] -> false
      | phs -> (
          Tel.incr "gen/backward_attempts";
          let v = Spec.pick st.rng phs in
          match backward st.rng v.out_type with
          | None ->
              Tel.incr "gen/reject/backward_none";
              false
          | Some (inst, in_types) ->
              (* the instance's out dims are v's dims by construction; assert
                 the remaining validity constraints *)
              let cs =
                insertion_constraints st inst
                @ List.concat_map
                    (fun t -> Spec.out_positive t @ [ numel_cap st t ])
                    in_types
              in
              if Solver.try_add_constraints st.solver cs then begin
                Tel.incr "gen/backward_ok";
                let weight_positions = weight_slots inst.op in
                let new_inputs =
                  List.mapi
                    (fun i t ->
                      let weight_only = List.mem i weight_positions in
                      (add_placeholder ~weight_only st t).id)
                    in_types
                in
                replace_node st v.id (fun n ->
                    {
                      n with
                      op = Some inst.op;
                      inputs = new_inputs;
                      out_type = inst.out_type;
                      sig_entry =
                        (Sym.dtype inst.out_type, Sym.rank inst.out_type);
                    });
                st.op_count <- st.op_count + 1;
                true
              end
              else begin
                Tel.incr "gen/reject/solver";
                false
              end))

let insert_one st : bool =
  Tel.with_span "gen/insert_op" (fun () ->
      let rec attempt k =
        if k = 0 then false
        else begin
          let tpl = Spec.pick st.rng st.templates in
          let forward_first =
            Random.State.float st.rng 1. < st.cfg.forward_prob
          in
          let ok =
            if forward_first then
              forward_insert st tpl || backward_insert st tpl
            else backward_insert st tpl || forward_insert st tpl
          in
          ok || attempt (k - 1)
        end
      in
      attempt st.cfg.insert_tries)

(* ------------------------------------------------------------------ *)
(* Algorithm 2: attribute binning.                                     *)

let sample_from_bin rng i k =
  if i <> k then begin
    let b = float_of_int (i - 1) +. Random.State.float rng 1. in
    let t = float_of_int (i - 1) +. Random.State.float rng 1. in
    let b, t = if b <= t then (b, t) else (t, b) in
    ( int_of_float (Float.pow 2. b),
      max (int_of_float (Float.pow 2. b)) (int_of_float (Float.pow 2. t)) )
  end
  else (1 lsl (k - 1), max_int)

(* Binning specialisations (§4): padding attributes also draw a 0-bin (and,
   for ConstPad, negative bins); Slice ranges are already constrained
   relative to the input dim, so its attributes draw from small bins. *)
let specialised st op_name attr_label (alpha : Expr.t) : Formula.t list option
    =
  let rng = st.rng in
  let pad_like = String.length attr_label >= 6 &&
                 (String.sub attr_label 0 6 = "before" || String.sub attr_label 0 5 = "after") in
  let is_pad_attr =
    (op_name = "Conv2d" && attr_label = "padding")
    || ((op_name = "ConstPad" || op_name = "ReflectPad" || op_name = "ReplicatePad")
        && pad_like)
  in
  if not is_pad_attr then None
  else begin
    match Random.State.int rng 4 with
    | 0 ->
        (* the extra 0-bin *)
        Some [ Formula.(alpha = Expr.zero) ]
    | 1 when op_name = "ConstPad" ->
        (* negative bin: cropping pads *)
        let m = 1 + Random.State.int rng 4 in
        Some Formula.[ Expr.int (-m) <= alpha; alpha <= Expr.int (-1) ]
    | _ ->
        let i = 1 + Random.State.int rng 3 in
        let l, r = sample_from_bin rng i 4 in
        Some Formula.[ Expr.int l <= alpha; alpha <= Expr.int r ]
  end

(* All (op-name, attr-label, attr-expr) triples of the graph, treating
   placeholder dims as attributes as Algorithm 2 prescribes. *)
let graph_attrs st =
  List.concat_map
    (fun n ->
      match n.op with
      | Some op ->
          List.map
            (fun (label, e) -> (Op.name op, label, e))
            (Op.shape_attrs op)
      | None ->
          List.mapi
            (fun i d -> ("Placeholder", Printf.sprintf "dim%d" i, d))
            n.out_type.Sym.dims)
    (node_list st)

let attr_binning st =
  Tel.with_span "gen/binning" @@ fun () ->
  let k = st.cfg.bins in
  let cb = ref [] in
  List.iter
    (fun (op_name, label, alpha) ->
      match Expr.is_const alpha with
      | Some _ -> ()  (* nothing to diversify *)
      | None -> (
          Tel.incr "gen/binning_picks";
          match specialised st op_name label alpha with
          | Some cs -> cb := cs @ !cb
          | None ->
              let i = 1 + Random.State.int st.rng k in
              let l, r = sample_from_bin st.rng i k in
              let lower = Formula.(Expr.int l <= alpha) in
              let upper =
                if r = max_int then [] else [ Formula.(alpha <= Expr.int r) ]
              in
              cb := (lower :: upper) @ !cb))
    (graph_attrs st);
  (* while unsatisfiable, randomly drop half of the binning constraints *)
  let rec settle cs =
    if cs = [] then ignore (Solver.check st.solver)
    else if Solver.try_add_constraints st.solver cs then ()
    else begin
      Tel.incr "gen/binning_drops";
      let half =
        List.filter (fun _ -> Random.State.bool st.rng) cs
        |> fun l ->
        if List.length l < List.length cs then l
        else List.filteri (fun i _ -> i mod 2 = 0) cs
      in
      settle half
    end
  in
  settle !cb

(* ------------------------------------------------------------------ *)
(* Concretisation.                                                     *)

let finalize_leaf_kind st ~weight_only ~need_input =
  if weight_only then Op.Model_weight
  else if need_input then Op.Model_input
  else begin
    match Random.State.int st.rng 10 with
    | 0 | 1 | 2 | 3 -> Op.Model_input
    | 4 | 5 | 6 | 7 -> Op.Model_weight
    | 8 -> Op.Const_fill 1.
    | _ -> Op.Const_fill 0.
  end

(* Kahn topological sort of the symbolic nodes (backward insertion breaks
   id-ordering), then emit a concrete graph. *)
let concretize st (model : Model.t) : Graph.t =
  Tel.with_span "gen/concretize" @@ fun () ->
  let nodes = node_list st in
  let remaining = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace remaining n.id n) nodes;
  let emitted = Hashtbl.create 32 in
  let graph = ref Graph.empty in
  let eval_dim e = Model.eval_expr model e in
  let have_input = ref false in
  let n_free_placeholders =
    List.length (List.filter (fun n -> n.op = None && not n.weight_only) nodes)
  in
  let free_seen = ref 0 in
  let emit n =
    let dtype, dims = Sym.concretize model n.out_type in
    let out_type = Conc.make dtype dims in
    let op =
      match n.op with
      | Some op -> Op.map_attrs eval_dim op
      | None ->
          if not n.weight_only then incr free_seen;
          let need_input =
            (not n.weight_only) && (not !have_input)
            && !free_seen = n_free_placeholders
          in
          let kind =
            finalize_leaf_kind st ~weight_only:n.weight_only ~need_input
          in
          if kind = Op.Model_input then have_input := true;
          Op.Leaf kind
    in
    let inputs = List.map (Hashtbl.find emitted) n.inputs in
    let g, new_id = Graph.add_node !graph ~op ~inputs ~out_type in
    graph := g;
    Hashtbl.replace emitted n.id new_id;
    Hashtbl.remove remaining n.id
  in
  let rec drain () =
    if Hashtbl.length remaining > 0 then begin
      let ready =
        List.filter
          (fun n ->
            Hashtbl.mem remaining n.id
            && List.for_all (Hashtbl.mem emitted) n.inputs)
          nodes
      in
      match ready with
      | [] -> raise (Gen_failure "cycle in symbolic graph")
      | _ ->
          List.iter emit ready;
          drain ()
    end
  in
  drain ();
  !graph

(* A graph with no Model_input leaf gets its first eligible Weight upgraded;
   handled above via [need_input], but a purely weight-only graph (all
   leaves are conv kernels) could still slip through — patch it here. *)
let ensure_input g =
  if Graph.inputs g <> [] then g
  else begin
    let first_leaf =
      match Graph.leaves g with
      | l :: _ -> l.Graph.id
      | [] -> raise (Gen_failure "graph has no leaves")
    in
    Graph.map_nodes
      (fun n ->
        if n.Graph.id = first_leaf then
          { n with op = Op.Leaf Op.Model_input }
        else n)
      g
  end

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

type stats = {
  gen_ms : float;
  solver_steps : int;
  ops : int;
  nodes_total : int;
}

let generate_with_stats (cfg : Config.t) : Graph.t * stats =
  Tel.with_span "gen/generate" @@ fun () ->
  let t0 = Tel.now_ms () in
  let st =
    {
      cfg;
      rng = Random.State.make [| cfg.seed |];
      solver = Solver.create ~max_steps:cfg.solver_max_steps ~seed:cfg.seed ();
      templates = Spec.compile_all cfg.templates;
      nodes = [];
      next_id = 0;
      op_count = 0;
    }
  in
  ignore (add_placeholder st (random_leaf_type st));
  let stalled = ref 0 in
  while st.op_count < cfg.max_nodes && !stalled < 3 do
    if insert_one st then stalled := 0 else incr stalled
  done;
  if st.op_count = 0 then raise (Gen_failure "no operator could be inserted");
  if cfg.binning then attr_binning st
  else ignore (Solver.check st.solver);
  let model =
    match Solver.model st.solver with
    | Some m -> m
    | None -> raise (Gen_failure "final constraint system unsatisfiable")
  in
  let g = ensure_input (concretize st model) in
  let gen_ms = Tel.now_ms () -. t0 in
  Tel.observe "gen/generate_ms" gen_ms;
  let stats =
    {
      gen_ms;
      solver_steps = Solver.check_steps st.solver;
      ops = st.op_count;
      nodes_total = Graph.size g;
    }
  in
  (g, stats)

let generate cfg = fst (generate_with_stats cfg)
