(** Live one-line campaign progress, derived exclusively from
    {!Journal.event}s: the renderer is an observer on the journal writer,
    so what the terminal shows and what the on-disk record says can never
    disagree.  Heartbeats update per-worker state; the line re-renders at
    most every [interval_ms]; the final summary prints once and ends the
    line. *)

type worker_state = {
  mutable ws_tests : int;
  mutable ws_at_ms : float;
  mutable ws_verdicts : (string * int) list;
  mutable ws_cov_total : int;
  mutable ws_cov_universe : int;
  mutable ws_cache_hits : int;
  mutable ws_cache_misses : int;
}

type t = {
  out : out_channel;
  interval_ms : float;
  workers : (int, worker_state) Hashtbl.t;
  mutable kind : string;
  mutable budget : Journal.budget option;
  mutable start_ms : float;  (* at_ms of the last Start event *)
  mutable bugs : int;  (* new cases *)
  mutable dups : int;
  mutable last_render_ms : float;
  mutable last_width : int;
  mutable done_ : bool;
}

let create ?(out = stderr) ?(interval_ms = 250.) () =
  {
    out;
    interval_ms;
    workers = Hashtbl.create 8;
    kind = "campaign";
    budget = None;
    start_ms = Float.nan;
    bugs = 0;
    dups = 0;
    last_render_ms = neg_infinity;
    last_width = 0;
    done_ = false;
  }

let worker t w =
  match Hashtbl.find_opt t.workers w with
  | Some ws -> ws
  | None ->
      let ws =
        {
          ws_tests = 0;
          ws_at_ms = 0.;
          ws_verdicts = [];
          ws_cov_total = 0;
          ws_cov_universe = 0;
          ws_cache_hits = 0;
          ws_cache_misses = 0;
        }
      in
      Hashtbl.replace t.workers w ws;
      ws

let sum t f = Hashtbl.fold (fun _ ws acc -> acc + f ws) t.workers 0

let merged_verdicts t =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ ws ->
      List.iter
        (fun (k, n) ->
          Hashtbl.replace tbl k
            (n + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        ws.ws_verdicts)
    t.workers;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let fmt_eta seconds =
  if not (Float.is_finite seconds) then "-"
  else
    let s = int_of_float (Float.max 0. seconds) in
    if s >= 3600 then Printf.sprintf "%dh%02dm" (s / 3600) (s mod 3600 / 60)
    else if s >= 60 then Printf.sprintf "%dm%02ds" (s / 60) (s mod 60)
    else Printf.sprintf "%ds" s

(* Render the status line from the accumulated event state.  [at_ms] is the
   timestamp of the event that triggered the render — the clock of record
   is the journal's, not the terminal's. *)
let line t ~at_ms =
  let tests = sum t (fun ws -> ws.ws_tests) in
  let elapsed_s = Float.max 1e-9 ((at_ms -. t.start_ms) /. 1000.) in
  let rate = float_of_int tests /. elapsed_s in
  let verdicts = merged_verdicts t in
  let vstr =
    if verdicts = [] then ""
    else
      " | "
      ^ String.concat " "
          (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) verdicts)
  in
  (* Coverage union is not additive across domains; the max over workers is
     the live lower bound (exact when jobs = 1), the summary is exact. *)
  let cov =
    Hashtbl.fold (fun _ ws acc -> max acc ws.ws_cov_total) t.workers 0
  in
  let universe =
    Hashtbl.fold (fun _ ws acc -> max acc ws.ws_cov_universe) t.workers 0
  in
  let covstr =
    if universe = 0 then ""
    else
      Printf.sprintf " | cov %d (%.1f%%)" cov
        (100. *. float_of_int cov /. float_of_int universe)
  in
  let hits = sum t (fun ws -> ws.ws_cache_hits) in
  let misses = sum t (fun ws -> ws.ws_cache_misses) in
  let cachestr =
    if hits + misses = 0 then ""
    else
      Printf.sprintf " | cache %.0f%%"
        (100. *. float_of_int hits /. float_of_int (hits + misses))
  in
  let eta =
    match t.budget with
    | Some (Journal.B_tests n) when rate > 0. ->
        float_of_int (max 0 (n - tests)) /. rate
    | Some (Journal.B_time_ms b) -> (b -. (at_ms -. t.start_ms)) /. 1000.
    | _ -> infinity
  in
  Printf.sprintf "%s: %d tests %.1f/s%s | bugs %d (+%d dup)%s%s | eta %s"
    t.kind tests rate vstr t.bugs t.dups covstr cachestr (fmt_eta eta)

let show t s =
  (* Pad with spaces to wipe the previous, possibly longer, line. *)
  let pad = max 0 (t.last_width - String.length s) in
  Printf.fprintf t.out "\r%s%s%!" s (String.make pad ' ');
  t.last_width <- String.length s

let render ?(force = false) t ~at_ms =
  if (not t.done_) && (force || at_ms -. t.last_render_ms >= t.interval_ms)
  then begin
    t.last_render_ms <- at_ms;
    show t (line t ~at_ms)
  end

let observe t (ev : Journal.event) =
  match ev with
  | Journal.Start s ->
      t.kind <- s.s_kind;
      t.budget <- Some s.s_budget;
      t.start_ms <- s.s_at_ms;
      Hashtbl.reset t.workers;
      t.bugs <- 0;
      t.dups <- 0;
      t.done_ <- false;
      render ~force:true t ~at_ms:s.s_at_ms
  | Journal.Heartbeat h ->
      let ws = worker t h.h_worker in
      if Float.is_nan t.start_ms then t.start_ms <- h.h_at_ms;
      ws.ws_tests <- h.h_tests;
      ws.ws_at_ms <- h.h_at_ms;
      ws.ws_verdicts <- h.h_verdicts;
      ws.ws_cov_total <- h.h_cov_total;
      ws.ws_cov_universe <- h.h_cov_universe;
      ws.ws_cache_hits <- h.h_cache_hits;
      ws.ws_cache_misses <- h.h_cache_misses;
      render t ~at_ms:h.h_at_ms
  | Journal.Bug b ->
      if b.b_new then t.bugs <- t.bugs + 1 else t.dups <- t.dups + 1;
      render t ~at_ms:b.b_at_ms
  | Journal.Coverage _ | Journal.Op_stats _ | Journal.Dropped _
  | Journal.Shard_done _ ->
      ()
  | Journal.Worker_crash wc ->
      (* Worker deaths are filed as crash bundles by the supervisor, so the
         bug counter already moves; just force a re-render. *)
      render ~force:true t ~at_ms:wc.wc_at_ms
  | Journal.Resume rs ->
      (* Continue the line without resetting counters: heartbeats carry
         cumulative totals and will repopulate worker state. *)
      if Float.is_nan t.start_ms then t.start_ms <- rs.rs_at_ms;
      t.done_ <- false;
      render ~force:true t ~at_ms:rs.rs_at_ms
  | Journal.Summary f ->
      if not t.done_ then begin
        let covstr =
          if f.f_cov_total = 0 then ""
          else Printf.sprintf " | cov %d" f.f_cov_total
        in
        let s =
          Printf.sprintf
            "%s: %d tests %.1f/s | %s | bugs %d new, %d dup, %d distinct%s%s"
            t.kind f.f_tests f.f_tests_per_sec
            (String.concat " "
               (List.map
                  (fun (k, n) -> Printf.sprintf "%s=%d" k n)
                  f.f_verdicts))
            f.f_saved f.f_dups f.f_failures covstr
            (if f.f_dropped > 0 then
               Printf.sprintf " | DROPPED %d events" f.f_dropped
             else "")
        in
        show t s;
        Printf.fprintf t.out "\n%!";
        t.done_ <- true
      end

let finish t =
  if not t.done_ then begin
    if t.last_width > 0 then Printf.fprintf t.out "\n%!";
    t.done_ <- true
  end
