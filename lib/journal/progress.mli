(** Live one-line campaign status, derived from {!Journal.event}s.

    Install {!observe} as the journal writer's [observer]: every rendered
    figure then comes from an event that is already durably on disk, so
    the terminal line and the journal cannot disagree.  Heartbeats update
    per-worker state; the line (tests, tests/sec, verdict tallies, bugs,
    coverage, solver-cache hit rate, ETA) re-renders in place at most
    every [interval_ms]; the [Summary] event prints a final line and a
    newline. *)

type t

val create : ?out:out_channel -> ?interval_ms:float -> unit -> t
(** [out] defaults to [stderr]; [interval_ms] to [250.].  Timestamps come
    from the events themselves, not from a renderer-side clock. *)

val observe : t -> Journal.event -> unit

val finish : t -> unit
(** Terminate the in-place line with a newline if a summary never arrived
    (e.g. the campaign raised).  Idempotent. *)
