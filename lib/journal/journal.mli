(** Append-only, crash-safe campaign journal.

    A fuzzing campaign emits a stream of structured events — configuration
    at start, per-shard heartbeats with monotonic per-worker sequence
    numbers, bug discoveries (dedup key, reducer stats), coverage-delta
    snapshots and a final summary — written as one JSON object per line to
    an append-mode file.  Writes happen on the spawning domain only (the
    corpus-sink discipline of [Nnsmith_parallel.Pool]); each event is
    flushed as one complete line, so a process killed mid-write tears at
    most its final line, which {!read_file} tolerates.  The journal is the
    single source both the live [--progress] line and the static HTML
    dashboard are derived from, so the terminal view and the on-disk
    record cannot disagree. *)

type budget = B_tests of int | B_time_ms of float

type reducer = {
  rd_attempts : int;
  rd_accepted : int;
  rd_initial : int;
  rd_final : int;
  rd_ms : float;
}

type event =
  | Start of {
      s_at_ms : float;  (** absolute wall-clock ms ([Telemetry.now_ms]) *)
      s_kind : string;  (** fuzz | coverage | hunt | campaign | ... *)
      s_systems : string list;
      s_generator : string;
      s_root_seed : int;
      s_jobs : int;
      s_budget : budget;
    }
  | Heartbeat of {
      h_worker : int;
      h_seq : int;  (** per-worker, strictly increasing *)
      h_at_ms : float;
      h_tests : int;  (** cumulative for this worker *)
      h_verdicts : (string * int) list;  (** cumulative, sorted by name *)
      h_cov_total : int;  (** this worker's domain-local coverage *)
      h_cov_pass : int;
      h_cov_universe : int;
      h_cache_hits : int;  (** solver solve-cache, this worker's domain *)
      h_cache_misses : int;
    }
  | Bug of {
      b_at_ms : float;
      b_key : string;
      b_system : string;
      b_verdict : string;
      b_case : string;  (** corpus case id; "" when not persisted *)
      b_nodes : int;
      b_count : int;  (** hits of this key so far, this one included *)
      b_new : bool;  (** [false]: duplicate of an already-saved case *)
      b_reducer : reducer option;
    }
  | Coverage of {
      c_at_ms : float;
      c_tests : int;
      c_total : int;
      c_pass : int;
    }
  | Op_stats of {
      o_at_ms : float;
      o_ops : (string * (string * int) list) list;
          (** op kind -> verdict kind -> count; both levels sorted *)
    }
  | Dropped of { d_at_ms : float; d_count : int }
      (** events lost to a saturated cross-domain channel — recorded, never
          silently discarded *)
  | Shard_done of {
      sd_at_ms : float;
      sd_worker : int;
      sd_tests : int;  (** tests this shard completed over the campaign *)
      sd_last_index : int;
          (** highest global index the shard ran; [-1] for an empty shard *)
    }  (** a fleet shard ran its whole index range to the end *)
  | Worker_crash of {
      wc_at_ms : float;
      wc_worker : int;
      wc_index : int;  (** global test index the worker died on *)
      wc_seed : int;  (** derived seed of that index *)
      wc_cause : string;  (** e.g. ["exit 66"], ["signal 9"], ["heartbeat timeout"] *)
      wc_restarts : int;  (** restarts of this shard so far, this one included *)
    }  (** a fleet worker process died mid-range; the supervisor files the
          crash and restarts the shard past the offending index *)
  | Resume of {
      rs_at_ms : float;
      rs_applied : int;  (** checkpoint high-water mark: indices [0, applied)
                             were already applied before this resume *)
      rs_tests : int;  (** campaign test budget *)
      rs_shards : int;
    }  (** a fleet campaign continued from its checkpoint *)
  | Summary of {
      f_at_ms : float;
      f_tests : int;
      f_tests_per_sec : float;
      f_verdicts : (string * int) list;
      f_failures : int;  (** distinct failure dedup-keys *)
      f_saved : int;
      f_dups : int;
      f_cov_total : int;
      f_cov_pass : int;
      f_dropped : int;
    }

val now_ms : unit -> float
(** The shared campaign clock ([Telemetry.now_ms]). *)

val to_json : event -> Nnsmith_telemetry.Json.t
val of_json : Nnsmith_telemetry.Json.t -> (event, string) result
val event_of_line : string -> (event, string) result

(** {1 Writer} *)

type t

val create : ?observer:(event -> unit) -> ?path:string -> unit -> t
(** A journal writer.  With [path], events append to that file (parent
    directories are created; an existing journal is continued, which is
    what a resumed campaign wants).  [observer] sees every event after it
    is durably written — the live progress line hangs off this.  With
    neither, {!emit} only counts (a null journal keeps call sites
    branch-free). *)

val default_file : string
(** ["journal.jsonl"]. *)

val in_dir : string -> string
(** [in_dir dir] is the conventional journal path inside a campaign
    directory. *)

val emit : t -> event -> unit
(** Encode, append, flush, then notify the observer.  Single-writer: call
    only from the domain that created [t].  Bumps the [journal/events]
    telemetry counter. *)

val close : t -> unit
(** Close the underlying file; further {!emit}s are ignored. *)

val path : t -> string option
val events_written : t -> int

(** {1 Tolerant reader} *)

type read_result = {
  events : event list;  (** in write order *)
  torn_tail : bool;  (** the final line was truncated or garbage *)
  bad_lines : int;  (** unparseable non-final lines (skipped) *)
}

val read_string : string -> read_result
val read_file : string -> (read_result, string) result
(** [Error] only when the file cannot be read at all; a torn final line —
    the kill -9 artefact — is reported via [torn_tail], with every
    preceding event intact. *)

val summary_line : event -> string
(** One-line human rendering, used by [nnsmith journal tail]. *)

val repair_tail : string -> int
(** Truncate an unterminated final line in place, so a writer reopening
    the journal in append mode cannot concatenate its first event onto a
    torn fragment.  Returns the bytes dropped (0 when the tail is already
    clean or the file does not exist). *)
