(** Append-only campaign journal: the durable, crash-safe record of a
    fuzzing run.  Every campaign driver emits a stream of structured events
    — config at start, per-shard heartbeats with monotonic sequence
    numbers, bug discoveries with reducer stats, coverage deltas, a final
    summary — as one JSON object per line.  The writer lives on the
    spawning domain only (the same single-writer discipline as the corpus
    sink), each event is flushed as a complete line, and the reader
    tolerates a torn final line, so a campaign killed mid-write loses at
    most the event being written.  This is the substrate for the live
    [--progress] view, the static HTML dashboard, and (eventually) the
    resumable campaign daemon. *)

module Json = Nnsmith_telemetry.Json
module Tel = Nnsmith_telemetry.Telemetry

(* ------------------------------------------------------------------ *)
(* Event schema                                                        *)

type budget = B_tests of int | B_time_ms of float

type reducer = {
  rd_attempts : int;
  rd_accepted : int;
  rd_initial : int;
  rd_final : int;
  rd_ms : float;
}

type event =
  | Start of {
      s_at_ms : float;
      s_kind : string;  (* fuzz | coverage | hunt | campaign | ... *)
      s_systems : string list;
      s_generator : string;
      s_root_seed : int;
      s_jobs : int;
      s_budget : budget;
    }
  | Heartbeat of {
      h_worker : int;
      h_seq : int;  (* per-worker, strictly increasing *)
      h_at_ms : float;
      h_tests : int;  (* cumulative for this worker *)
      h_verdicts : (string * int) list;  (* cumulative, sorted *)
      h_cov_total : int;
      h_cov_pass : int;
      h_cov_universe : int;
      h_cache_hits : int;
      h_cache_misses : int;
    }
  | Bug of {
      b_at_ms : float;
      b_key : string;
      b_system : string;
      b_verdict : string;
      b_case : string;
      b_nodes : int;
      b_count : int;  (* hits of this dedup key so far, this one included *)
      b_new : bool;  (* false: duplicate of an already-saved case *)
      b_reducer : reducer option;
    }
  | Coverage of {
      c_at_ms : float;
      c_tests : int;
      c_total : int;
      c_pass : int;
    }
  | Op_stats of {
      o_at_ms : float;
      o_ops : (string * (string * int) list) list;
          (* op kind -> verdict kind -> count; both levels sorted *)
    }
  | Dropped of { d_at_ms : float; d_count : int }
  | Shard_done of {
      sd_at_ms : float;
      sd_worker : int;
      sd_tests : int;  (* tests this shard completed over the campaign *)
      sd_last_index : int;  (* highest global index the shard ran; -1 if none *)
    }
  | Worker_crash of {
      wc_at_ms : float;
      wc_worker : int;
      wc_index : int;  (* global test index the worker died on *)
      wc_seed : int;  (* derived seed of that index *)
      wc_cause : string;  (* "exit 66" | "signal 9" | "heartbeat timeout" ... *)
      wc_restarts : int;  (* restarts of this shard so far, this one included *)
    }
  | Resume of {
      rs_at_ms : float;
      rs_applied : int;  (* checkpoint high-water mark: indices [0, applied) *)
      rs_tests : int;  (* campaign test budget *)
      rs_shards : int;
    }
  | Summary of {
      f_at_ms : float;
      f_tests : int;
      f_tests_per_sec : float;
      f_verdicts : (string * int) list;
      f_failures : int;  (* distinct failure dedup-keys *)
      f_saved : int;
      f_dups : int;
      f_cov_total : int;
      f_cov_pass : int;
      f_dropped : int;
    }

let now_ms = Tel.now_ms

(* ------------------------------------------------------------------ *)
(* JSON encode/decode (hand-rolled like the telemetry and corpus
   schemas; the "ev" discriminator comes first so journals grep well).  *)

let counts_to_json kvs =
  Json.Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) kvs)

let counts_of_json = function
  | Some (Json.Obj kvs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, Json.Num n) :: rest -> go ((k, int_of_float n) :: acc) rest
        | (k, _) :: _ -> Error (Printf.sprintf "count field %S not a number" k)
      in
      go [] kvs
  | Some _ -> Error "counts field is not an object"
  | None -> Ok []

let budget_to_json = function
  | B_tests n -> Json.Obj [ ("tests", Json.Num (float_of_int n)) ]
  | B_time_ms ms -> Json.Obj [ ("time_ms", Json.Num ms) ]

let budget_of_json j =
  match Option.bind (Json.member "tests" j) Json.to_int with
  | Some n -> Ok (B_tests n)
  | None -> (
      match Option.bind (Json.member "time_ms" j) Json.to_float with
      | Some ms -> Ok (B_time_ms ms)
      | None -> Error "budget without tests or time_ms")

let reducer_to_json r =
  Json.Obj
    [
      ("attempts", Json.Num (float_of_int r.rd_attempts));
      ("accepted", Json.Num (float_of_int r.rd_accepted));
      ("initial_nodes", Json.Num (float_of_int r.rd_initial));
      ("final_nodes", Json.Num (float_of_int r.rd_final));
      ("ms", Json.Num r.rd_ms);
    ]

let ( let* ) = Result.bind

let int_field j k =
  match Option.bind (Json.member k j) Json.to_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "missing int field %S" k)

let float_field j k =
  match Option.bind (Json.member k j) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing float field %S" k)

let str_field j k =
  match Option.bind (Json.member k j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" k)

let reducer_of_json j =
  let* rd_attempts = int_field j "attempts" in
  let* rd_accepted = int_field j "accepted" in
  let* rd_initial = int_field j "initial_nodes" in
  let* rd_final = int_field j "final_nodes" in
  let* rd_ms = float_field j "ms" in
  Ok { rd_attempts; rd_accepted; rd_initial; rd_final; rd_ms }

let to_json = function
  | Start s ->
      Json.Obj
        [
          ("ev", Json.Str "start");
          ("at_ms", Json.Num s.s_at_ms);
          ("kind", Json.Str s.s_kind);
          ("systems", Json.Arr (List.map (fun x -> Json.Str x) s.s_systems));
          ("generator", Json.Str s.s_generator);
          ("root_seed", Json.Num (float_of_int s.s_root_seed));
          ("jobs", Json.Num (float_of_int s.s_jobs));
          ("budget", budget_to_json s.s_budget);
        ]
  | Heartbeat h ->
      Json.Obj
        [
          ("ev", Json.Str "heartbeat");
          ("worker", Json.Num (float_of_int h.h_worker));
          ("seq", Json.Num (float_of_int h.h_seq));
          ("at_ms", Json.Num h.h_at_ms);
          ("tests", Json.Num (float_of_int h.h_tests));
          ("verdicts", counts_to_json h.h_verdicts);
          ("cov_total", Json.Num (float_of_int h.h_cov_total));
          ("cov_pass", Json.Num (float_of_int h.h_cov_pass));
          ("cov_universe", Json.Num (float_of_int h.h_cov_universe));
          ("cache_hits", Json.Num (float_of_int h.h_cache_hits));
          ("cache_misses", Json.Num (float_of_int h.h_cache_misses));
        ]
  | Bug b ->
      Json.Obj
        [
          ("ev", Json.Str "bug");
          ("at_ms", Json.Num b.b_at_ms);
          ("dedup_key", Json.Str b.b_key);
          ("system", Json.Str b.b_system);
          ("verdict", Json.Str b.b_verdict);
          ("case", Json.Str b.b_case);
          ("nodes", Json.Num (float_of_int b.b_nodes));
          ("count", Json.Num (float_of_int b.b_count));
          ("new", Json.Bool b.b_new);
          ( "reduction",
            match b.b_reducer with
            | None -> Json.Null
            | Some r -> reducer_to_json r );
        ]
  | Coverage c ->
      Json.Obj
        [
          ("ev", Json.Str "coverage");
          ("at_ms", Json.Num c.c_at_ms);
          ("tests", Json.Num (float_of_int c.c_tests));
          ("cov_total", Json.Num (float_of_int c.c_total));
          ("cov_pass", Json.Num (float_of_int c.c_pass));
        ]
  | Op_stats o ->
      Json.Obj
        [
          ("ev", Json.Str "op_stats");
          ("at_ms", Json.Num o.o_at_ms);
          ( "ops",
            Json.Obj
              (List.map (fun (op, vs) -> (op, counts_to_json vs)) o.o_ops) );
        ]
  | Dropped d ->
      Json.Obj
        [
          ("ev", Json.Str "dropped");
          ("at_ms", Json.Num d.d_at_ms);
          ("count", Json.Num (float_of_int d.d_count));
        ]
  | Shard_done sd ->
      Json.Obj
        [
          ("ev", Json.Str "shard_done");
          ("at_ms", Json.Num sd.sd_at_ms);
          ("worker", Json.Num (float_of_int sd.sd_worker));
          ("tests", Json.Num (float_of_int sd.sd_tests));
          ("last_index", Json.Num (float_of_int sd.sd_last_index));
        ]
  | Worker_crash wc ->
      Json.Obj
        [
          ("ev", Json.Str "worker_crash");
          ("at_ms", Json.Num wc.wc_at_ms);
          ("worker", Json.Num (float_of_int wc.wc_worker));
          ("index", Json.Num (float_of_int wc.wc_index));
          ("seed", Json.Num (float_of_int wc.wc_seed));
          ("cause", Json.Str wc.wc_cause);
          ("restarts", Json.Num (float_of_int wc.wc_restarts));
        ]
  | Resume rs ->
      Json.Obj
        [
          ("ev", Json.Str "resume");
          ("at_ms", Json.Num rs.rs_at_ms);
          ("applied", Json.Num (float_of_int rs.rs_applied));
          ("tests", Json.Num (float_of_int rs.rs_tests));
          ("shards", Json.Num (float_of_int rs.rs_shards));
        ]
  | Summary f ->
      Json.Obj
        [
          ("ev", Json.Str "summary");
          ("at_ms", Json.Num f.f_at_ms);
          ("tests", Json.Num (float_of_int f.f_tests));
          ("tests_per_sec", Json.Num f.f_tests_per_sec);
          ("verdicts", counts_to_json f.f_verdicts);
          ("failures", Json.Num (float_of_int f.f_failures));
          ("saved", Json.Num (float_of_int f.f_saved));
          ("dups", Json.Num (float_of_int f.f_dups));
          ("cov_total", Json.Num (float_of_int f.f_cov_total));
          ("cov_pass", Json.Num (float_of_int f.f_cov_pass));
          ("dropped", Json.Num (float_of_int f.f_dropped));
        ]

let strings_of_json k j =
  match Json.member k j with
  | Some (Json.Arr xs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Str s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "field %S: non-string element" k)
      in
      go [] xs
  | Some _ -> Error (Printf.sprintf "field %S is not an array" k)
  | None -> Ok []

let of_json j : (event, string) result =
  let* ev = str_field j "ev" in
  let* at_ms = float_field j "at_ms" in
  match ev with
  | "start" ->
      let* s_kind = str_field j "kind" in
      let* s_systems = strings_of_json "systems" j in
      let* s_generator = str_field j "generator" in
      let* s_root_seed = int_field j "root_seed" in
      let* s_jobs = int_field j "jobs" in
      let* s_budget =
        match Json.member "budget" j with
        | Some b -> budget_of_json b
        | None -> Error "missing budget"
      in
      Ok
        (Start
           {
             s_at_ms = at_ms;
             s_kind;
             s_systems;
             s_generator;
             s_root_seed;
             s_jobs;
             s_budget;
           })
  | "heartbeat" ->
      let* h_worker = int_field j "worker" in
      let* h_seq = int_field j "seq" in
      let* h_tests = int_field j "tests" in
      let* h_verdicts = counts_of_json (Json.member "verdicts" j) in
      let* h_cov_total = int_field j "cov_total" in
      let* h_cov_pass = int_field j "cov_pass" in
      let* h_cov_universe = int_field j "cov_universe" in
      let* h_cache_hits = int_field j "cache_hits" in
      let* h_cache_misses = int_field j "cache_misses" in
      Ok
        (Heartbeat
           {
             h_worker;
             h_seq;
             h_at_ms = at_ms;
             h_tests;
             h_verdicts;
             h_cov_total;
             h_cov_pass;
             h_cov_universe;
             h_cache_hits;
             h_cache_misses;
           })
  | "bug" ->
      let* b_key = str_field j "dedup_key" in
      let* b_system = str_field j "system" in
      let* b_verdict = str_field j "verdict" in
      let* b_case = str_field j "case" in
      let* b_nodes = int_field j "nodes" in
      let* b_count = int_field j "count" in
      let b_new =
        match Json.member "new" j with Some (Json.Bool b) -> b | _ -> true
      in
      let* b_reducer =
        match Json.member "reduction" j with
        | None | Some Json.Null -> Ok None
        | Some r ->
            let* r = reducer_of_json r in
            Ok (Some r)
      in
      Ok
        (Bug
           {
             b_at_ms = at_ms;
             b_key;
             b_system;
             b_verdict;
             b_case;
             b_nodes;
             b_count;
             b_new;
             b_reducer;
           })
  | "coverage" ->
      let* c_tests = int_field j "tests" in
      let* c_total = int_field j "cov_total" in
      let* c_pass = int_field j "cov_pass" in
      Ok (Coverage { c_at_ms = at_ms; c_tests; c_total; c_pass })
  | "op_stats" ->
      let* o_ops =
        match Json.member "ops" j with
        | Some (Json.Obj kvs) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | (op, v) :: rest ->
                  let* vs = counts_of_json (Some v) in
                  go ((op, vs) :: acc) rest
            in
            go [] kvs
        | Some _ -> Error "ops field is not an object"
        | None -> Ok []
      in
      Ok (Op_stats { o_at_ms = at_ms; o_ops })
  | "dropped" ->
      let* d_count = int_field j "count" in
      Ok (Dropped { d_at_ms = at_ms; d_count })
  | "shard_done" ->
      let* sd_worker = int_field j "worker" in
      let* sd_tests = int_field j "tests" in
      let* sd_last_index = int_field j "last_index" in
      Ok (Shard_done { sd_at_ms = at_ms; sd_worker; sd_tests; sd_last_index })
  | "worker_crash" ->
      let* wc_worker = int_field j "worker" in
      let* wc_index = int_field j "index" in
      let* wc_seed = int_field j "seed" in
      let* wc_cause = str_field j "cause" in
      let* wc_restarts = int_field j "restarts" in
      Ok
        (Worker_crash
           { wc_at_ms = at_ms; wc_worker; wc_index; wc_seed; wc_cause; wc_restarts })
  | "resume" ->
      let* rs_applied = int_field j "applied" in
      let* rs_tests = int_field j "tests" in
      let* rs_shards = int_field j "shards" in
      Ok (Resume { rs_at_ms = at_ms; rs_applied; rs_tests; rs_shards })
  | "summary" ->
      let* f_tests = int_field j "tests" in
      let* f_tests_per_sec = float_field j "tests_per_sec" in
      let* f_verdicts = counts_of_json (Json.member "verdicts" j) in
      let* f_failures = int_field j "failures" in
      let* f_saved = int_field j "saved" in
      let* f_dups = int_field j "dups" in
      let* f_cov_total = int_field j "cov_total" in
      let* f_cov_pass = int_field j "cov_pass" in
      let* f_dropped = int_field j "dropped" in
      Ok
        (Summary
           {
             f_at_ms = at_ms;
             f_tests;
             f_tests_per_sec;
             f_verdicts;
             f_failures;
             f_saved;
             f_dups;
             f_cov_total;
             f_cov_pass;
             f_dropped;
           })
  | k -> Error (Printf.sprintf "unknown event kind %S" k)

let event_of_line line =
  match Json.parse line with
  | Error m -> Error m
  | Ok j -> of_json j

(* ------------------------------------------------------------------ *)
(* Writer: single-writer, append-mode, one flushed line per event.     *)

type t = {
  j_path : string option;
  j_oc : out_channel option;
  j_observer : (event -> unit) option;
  mutable j_events : int;
  mutable j_closed : bool;
}

let default_file = "journal.jsonl"
let in_dir dir = Filename.concat dir default_file

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?observer ?path () =
  let oc =
    Option.map
      (fun p ->
        mkdir_p (Filename.dirname p);
        open_out_gen [ Open_append; Open_creat ] 0o644 p)
      path
  in
  { j_path = path; j_oc = oc; j_observer = observer; j_events = 0; j_closed = false }

let path t = t.j_path
let events_written t = t.j_events

let emit t ev =
  if not t.j_closed then begin
    t.j_events <- t.j_events + 1;
    Tel.incr "journal/events";
    (match t.j_oc with
    | Some oc ->
        (* One complete line per write, flushed immediately: a kill -9 can
           tear at most the line being written, never an earlier one. *)
        output_string oc (Json.to_string (to_json ev));
        output_char oc '\n';
        flush oc
    | None -> ());
    match t.j_observer with Some f -> f ev | None -> ()
  end

let close t =
  if not t.j_closed then begin
    t.j_closed <- true;
    match t.j_oc with Some oc -> close_out oc | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Tolerant reader                                                     *)

type read_result = {
  events : event list;  (** in write order *)
  torn_tail : bool;  (** the final line was truncated or garbage *)
  bad_lines : int;  (** unparseable non-final lines (skipped) *)
}

let read_string (s : string) : read_result =
  (* Split into (line, terminated) pairs; the final fragment after the last
     newline — if any — is an unterminated tail. *)
  let n = String.length s in
  let lines = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if s.[i] = '\n' then begin
      lines := (String.sub s !start (i - !start), true) :: !lines;
      start := i + 1
    end
  done;
  if !start < n then lines := (String.sub s !start (n - !start), false) :: !lines;
  let lines =
    List.rev !lines |> List.filter (fun (l, _) -> String.trim l <> "")
  in
  let total = List.length lines in
  let events = ref [] and bad = ref 0 and torn = ref false in
  List.iteri
    (fun i (line, terminated) ->
      match event_of_line line with
      | Ok ev -> events := ev :: !events
      | Error _ ->
          (* The final line — terminated or not — is a torn tail (the
             classic kill -9 artefact); earlier garbage is counted. *)
          if i = total - 1 then torn := true
          else begin
            incr bad;
            ignore terminated
          end)
    lines;
  { events = List.rev !events; torn_tail = !torn; bad_lines = !bad }

(* One-line human rendering of an event, for [nnsmith journal tail]. *)
let summary_line ev =
  let counts kvs =
    String.concat " " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) kvs)
  in
  match ev with
  | Start s ->
      Printf.sprintf "[start] %s systems=%s seed=%d jobs=%d %s" s.s_kind
        (String.concat "," s.s_systems)
        s.s_root_seed s.s_jobs
        (match s.s_budget with
        | B_tests n -> Printf.sprintf "tests=%d" n
        | B_time_ms ms -> Printf.sprintf "time=%.0fms" ms)
  | Heartbeat h ->
      Printf.sprintf "[hb] w%d seq=%d tests=%d cov=%d/%d %s" h.h_worker h.h_seq
        h.h_tests h.h_cov_total h.h_cov_universe (counts h.h_verdicts)
  | Bug b ->
      Printf.sprintf "[bug] %s %s %s case=%s count=%d%s" b.b_system b.b_verdict
        b.b_key b.b_case b.b_count
        (if b.b_new then "" else " (dup)")
  | Coverage c ->
      Printf.sprintf "[coverage] tests=%d total=%d pass=%d" c.c_tests c.c_total
        c.c_pass
  | Op_stats o -> Printf.sprintf "[op_stats] %d op kinds" (List.length o.o_ops)
  | Dropped d -> Printf.sprintf "[dropped] %d events" d.d_count
  | Shard_done sd ->
      Printf.sprintf "[shard_done] w%d tests=%d last_index=%d" sd.sd_worker
        sd.sd_tests sd.sd_last_index
  | Worker_crash wc ->
      Printf.sprintf "[worker_crash] w%d index=%d seed=%d cause=%s restarts=%d"
        wc.wc_worker wc.wc_index wc.wc_seed wc.wc_cause wc.wc_restarts
  | Resume rs ->
      Printf.sprintf "[resume] applied=%d/%d shards=%d" rs.rs_applied rs.rs_tests
        rs.rs_shards
  | Summary f ->
      Printf.sprintf "[summary] tests=%d (%.1f/s) failures=%d saved=%d cov=%d %s"
        f.f_tests f.f_tests_per_sec f.f_failures f.f_saved f.f_cov_total
        (counts f.f_verdicts)

let read_file path : (read_result, string) result =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Ok (read_string s)

(* Drop an unterminated final line so an append-mode writer reopening the
   file cannot concatenate its first event onto a torn fragment.  Returns
   the number of bytes truncated (0 when the tail is clean or the file is
   missing). *)
let repair_tail path =
  match open_in_bin path with
  | exception Sys_error _ -> 0
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let n = String.length s in
      if n = 0 || s.[n - 1] = '\n' then 0
      else begin
        let keep = match String.rindex_opt s '\n' with Some i -> i + 1 | None -> 0 in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () -> Unix.ftruncate fd keep);
        n - keep
      end
