(* The nnsmith command-line interface.

     nnsmith generate --seed 1 --nodes 10 --out models/
     nnsmith fuzz --system oxrt --budget 5 --bugs --report-dir reports/
     nnsmith fuzz --system lotus --tests 200 --jobs 4 --bugs
     nnsmith replay reports/
     nnsmith triage reports/
     nnsmith cov --budget 5 --jobs 2
     nnsmith hunt --budget 5 --jobs 4
     nnsmith stats out.jsonl
     nnsmith ops
     nnsmith bugs *)

open Cmdliner
module Config = Nnsmith_core.Config
module Gen = Nnsmith_core.Gen
module Graph = Nnsmith_ir.Graph
module Search = Nnsmith_grad.Search
module Cov = Nnsmith_coverage.Coverage
module Faults = Nnsmith_faults.Faults
module Tel = Nnsmith_telemetry.Telemetry
module Corpus = Nnsmith_corpus.Corpus
module Pool = Nnsmith_parallel.Pool
module Journal = Nnsmith_journal.Journal
module Progress = Nnsmith_journal.Progress
module Dashboard = Nnsmith_dashboard.Dashboard
module Fleet = Nnsmith_fleet.Fleet
module Flock = Nnsmith_fleet.Flock
module D = Nnsmith_difftest

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ---- generate ----------------------------------------------------- *)

(* ---- solver-cache escape hatch ------------------------------------ *)

let apply_no_cache no_cache =
  Nnsmith_smt.Solver.set_cache_enabled (not no_cache)

let no_cache_t =
  Arg.(
    value
    & flag
    & info [ "no-solver-cache" ]
        ~doc:
          "Disable the solver's solve-result caches (results are \
           bit-identical either way; this only trades speed for memory — \
           useful for benchmarking and debugging).")

(* ---- execution-plan escape hatch ---------------------------------- *)

let apply_no_plan no_plan = Nnsmith_exec.Plan.set_enabled (not no_plan)

let no_plan_t =
  Arg.(
    value
    & flag
    & info [ "no-exec-plan" ]
        ~doc:
          "Disable the compiled per-graph execution plans and run the \
           gradient input search and the reference oracle through the plain \
           interpreter (results are bit-identical either way; useful for A/B \
           benchmarking and debugging).")

(* ---- batched-engine escape hatches -------------------------------- *)

let apply_engine no_batch cohort_size =
  Nnsmith_smt.Solver.set_batch_enabled (not no_batch);
  Option.iter Nnsmith_exec.Plan.set_cohort_size cohort_size

let no_batch_t =
  Arg.(
    value
    & flag
    & info [ "no-batch" ]
        ~doc:
          "Disable batched incremental solver frames and probe each \
           candidate operator's constraints individually (results are \
           bit-identical either way; useful for A/B benchmarking and \
           debugging).")

let apply_no_prescreen no_prescreen =
  Nnsmith_smt.Solver.set_prescreen_enabled (not no_prescreen)

let no_prescreen_t =
  Arg.(
    value
    & flag
    & info [ "no-prescreen" ]
        ~doc:
          "Disable interval constraint pre-screening and send every \
           candidate-operator feasibility query to the solver (results are \
           bit-identical either way; useful for A/B benchmarking and \
           debugging).")

let cohort_size_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "cohort-size" ] ~docv:"N"
        ~doc:
          "Number of execution plans kept per worker in the shared cohort \
           pool (default 4).  Cohort members share one buffer arena; \
           results are bit-identical for any size >= 1.")

(* ---- generate ----------------------------------------------------- *)

let generate seed nodes count search out no_cache no_plan no_batch
    cohort_size no_prescreen =
  apply_no_cache no_cache;
  apply_no_plan no_plan;
  apply_engine no_batch cohort_size;
  apply_no_prescreen no_prescreen;
  let failures = ref 0 in
  Option.iter mkdir_p out;
  for k = 0 to count - 1 do
    match Gen.generate_with_stats { Config.default with seed = seed + k; max_nodes = nodes } with
    | exception Gen.Gen_failure m ->
        incr failures;
        Printf.eprintf "generation failed (seed %d): %s\n%!" (seed + k) m
    | g, stats ->
        Printf.printf "# seed %d: %d nodes, %.1f ms\n%s\n" (seed + k)
          stats.nodes_total stats.gen_ms (Graph.to_string g);
        (match out with
        | Some dir ->
            let path =
              Filename.concat dir (Printf.sprintf "model-%d.nns" (seed + k))
            in
            Nnsmith_ir.Serial.save path g;
            Printf.printf "# saved to %s\n" path
        | None -> ());
        if search then begin
          let rng = Random.State.make [| seed + k |] in
          let o = Search.search ~budget_ms:64. ~method_:Search.Gradient rng g in
          Printf.printf "# input search: %s (%d iterations, %.2f ms)\n"
            (if o.binding <> None then "ok" else "failed")
            o.iterations o.elapsed_ms
        end;
        print_newline ()
  done;
  if !failures = count then begin
    Printf.eprintf "all %d generation attempts failed\n%!" count;
    1
  end
  else 0

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let nodes_t =
  Arg.(value & opt int 10 & info [ "nodes" ] ~docv:"N" ~doc:"Operators per model.")

let count_t =
  Arg.(value & opt int 1 & info [ "count" ] ~docv:"N" ~doc:"Number of models.")

let search_t =
  Arg.(value & flag & info [ "search" ] ~doc:"Also run the gradient input search.")

let gen_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Also save each model to $(docv)/model-<seed>.nns (corpus seeds).")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate valid random models and print them")
    Term.(
      const generate $ seed_t $ nodes_t $ count_t $ search_t $ gen_out_t
      $ no_cache_t $ no_plan_t $ no_batch_t $ cohort_size_t $ no_prescreen_t)

(* ---- fuzz --------------------------------------------------------- *)

let system_of_name = function
  | "oxrt" -> Some D.Systems.oxrt
  | "lotus" -> Some D.Systems.lotus
  | "trt" -> Some D.Systems.trt
  | _ -> None

(* Returns an exit code: losing the run's report deserves more than a
   cmdliner "internal error" dump. *)
let write_telemetry = function
  | None -> 0
  | Some path -> (
      try
        Tel.append_jsonl path (Tel.snapshot ());
        Printf.printf "telemetry appended to %s\n" path;
        0
      with Sys_error m ->
        Printf.eprintf "cannot write telemetry: %s\n%!" m;
        1)

let budget_of ~budget_s = function
  | Some n -> Pool.Tests n
  | None -> Pool.Time_ms (budget_s *. 1000.)

(* ---- campaign journal / live progress ----------------------------- *)

(* One writer per invocation, created before the campaign and closed
   after it (even on exceptions).  [--progress] hangs the live renderer
   off the journal's observer hook, so every figure on the terminal comes
   from an event already durably on disk; with [--progress] alone the
   journal is observer-only (no file). *)
let with_journal ~journal_dir ~progress k =
  if journal_dir = None && not progress then k None
  else begin
    let prog = if progress then Some (Progress.create ()) else None in
    let observer = Option.map (fun p ev -> Progress.observe p ev) prog in
    let path = Option.map Journal.in_dir journal_dir in
    let journal = Journal.create ?observer ?path () in
    let finish () =
      Journal.close journal;
      Option.iter Progress.finish prog;
      Option.iter
        (fun p ->
          Printf.printf "journal: %s (%d event(s))\n" p
            (Journal.events_written journal))
        (Journal.path journal)
    in
    match k (Some journal) with
    | code ->
        finish ();
        code
    | exception e ->
        finish ();
        raise e
  end

(* --journal DIR also defaults --report-dir to DIR, so
   `nnsmith fuzz --journal d && nnsmith dashboard d` shows a full triage
   table without extra flags. *)
let default_report_dir report_dir journal_dir =
  match report_dir with Some _ -> report_dir | None -> journal_dir

(* Campaign directories are single-writer (append-only corpus index and
   journal), so a second concurrent campaign on the same directory must
   fail fast instead of interleaving writes.  Commands that write campaign
   state take the directory's advisory lock first. *)
let with_campaign_lock ~dir k =
  match dir with
  | None -> k ()
  | Some d -> (
      match Flock.acquire d with
      | Error m ->
          Printf.eprintf "%s\n" m;
          1
      | Ok lock -> Fun.protect ~finally:(fun () -> Flock.release lock) k)

let first_some a b = match a with Some _ -> a | None -> b

let journal_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Append the campaign event journal to $(docv)/journal.jsonl \
           (crash-safe JSONL; render it with `nnsmith dashboard $(docv)`). \
           Also defaults $(b,--report-dir) to $(docv).")

let progress_t =
  Arg.(
    value
    & flag
    & info [ "progress" ]
        ~doc:
          "Render a live one-line status (tests/sec, verdicts, bugs, \
           coverage, solver-cache hit rate, ETA) on stderr, derived from \
           the journal event stream.")

let print_parallel_result ?(triggered = false) (r : D.Pfuzz.result) =
  let s = r.r_stats in
  Printf.printf "jobs=%d tests=%d (%.1f tests/s, %.0f ms)\n" s.st_jobs
    s.st_tests s.st_tests_per_sec s.st_elapsed_ms;
  if s.st_jobs > 1 then
    List.iter
      (fun (w : Pool.worker_report) ->
        Printf.printf "  worker %d: %d tests, %d failure(s), %.0f ms%s\n"
          w.wr_worker w.wr_tests w.wr_failures w.wr_elapsed_ms
          (if w.wr_dropped > 0 then
             Printf.sprintf ", %d journal event(s) dropped" w.wr_dropped
           else ""))
      s.st_workers;
  List.iter (fun (k, n) -> Printf.printf "  %-12s %d\n" k n) r.r_verdicts;
  Printf.printf "unique failures: %d\n" (List.length r.r_failure_keys);
  List.iter (fun (k, n) -> Printf.printf "  %4dx %s\n" n k) r.r_crashes;
  if triggered then begin
    Printf.printf "seeded defects triggered: %d\n" (List.length r.r_triggered);
    List.iter (fun (id, n) -> Printf.printf "  %4dx %s\n" n id) r.r_triggered
  end

let print_corpus_line report_dir (r : D.Pfuzz.result) =
  Option.iter
    (fun dir ->
      Printf.printf
        "report corpus %s: %d new case(s), %d duplicate(s) suppressed\n" dir
        r.r_saved r.r_dups)
    report_dir

let fuzz system_name budget_s tests jobs bugs seed telemetry report_dir
    journal_dir progress no_cache no_plan no_batch cohort_size no_prescreen =
  apply_no_cache no_cache;
  apply_no_plan no_plan;
  apply_engine no_batch cohort_size;
  apply_no_prescreen no_prescreen;
  match system_of_name system_name with
  | None ->
      Printf.eprintf "unknown system %s (oxrt | lotus | trt)\n" system_name;
      1
  | Some system ->
      if bugs then Faults.activate_all () else Faults.deactivate_all ();
      Tel.reset ();
      let report_dir = default_report_dir report_dir journal_dir in
      with_campaign_lock ~dir:(first_some journal_dir report_dir) (fun () ->
          with_journal ~journal_dir ~progress (fun journal ->
              let r =
                D.Pfuzz.fuzz ~jobs ?journal ?report_dir ~systems:[ system ]
                  ~root_seed:seed
                  ~budget:(budget_of ~budget_s tests)
                  ()
              in
              Printf.printf "fuzzed %s: " system.s_name;
              print_parallel_result r;
              print_corpus_line report_dir r;
              write_telemetry telemetry))

let system_t =
  Arg.(value & opt string "oxrt" & info [ "system" ] ~docv:"SYS" ~doc:"oxrt | lotus | trt.")

let budget_t =
  Arg.(value & opt float 5. & info [ "budget" ] ~docv:"SECONDS" ~doc:"Time budget.")

let bugs_t =
  Arg.(value & flag & info [ "bugs" ] ~doc:"Activate the seeded defects.")

let jobs_t =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains.  1 runs inline; with $(b,--tests), the workload \
           is identical for every $(docv).")

let tests_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "tests" ] ~docv:"N"
        ~doc:
          "Run exactly $(docv) tests instead of a time budget \
           (jobs-independent, deterministic workload).")

let telemetry_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:"Append a JSONL telemetry snapshot to $(docv) when done.")

let report_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-dir" ] ~docv:"DIR"
        ~doc:
          "Save every crash and semantic mismatch to the persistent corpus \
           in $(docv) (minimized, deduplicated across runs).")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Differentially fuzz one compiler")
    Term.(
      const fuzz $ system_t $ budget_t $ tests_t $ jobs_t $ bugs_t $ seed_t
      $ telemetry_t $ report_dir_t $ journal_t $ progress_t $ no_cache_t
      $ no_plan_t $ no_batch_t $ cohort_size_t $ no_prescreen_t)

(* ---- replay / triage ----------------------------------------------- *)

let corpus_dir_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Bug-report corpus directory.")

let with_corpus dir k =
  match Corpus.open_ dir with
  | exception Corpus.Corpus_error m ->
      Printf.eprintf "cannot open corpus %s: %s\n" dir m;
      1
  | corpus ->
      if Corpus.size corpus = 0 then begin
        Printf.eprintf "corpus %s holds no saved cases\n" dir;
        1
      end
      else k corpus

let replay dir =
  with_corpus dir (fun corpus ->
      let outcomes = D.Report.replay corpus in
      let drifted = List.filter (fun o -> o.D.Report.rp_drift) outcomes in
      List.iter
        (fun (o : D.Report.outcome) ->
          Printf.printf "%-32s %-9s -> %-9s %s\n" o.rp_case o.rp_expected_kind
            o.rp_got_kind
            (if o.rp_drift then "DRIFT " ^ o.rp_note else "ok"))
        outcomes;
      Printf.printf "replayed %d case(s): %d reproduced, %d drifted\n"
        (List.length outcomes)
        (List.length outcomes - List.length drifted)
        (List.length drifted);
      if drifted = [] then 0 else 1)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run every saved corpus case and report verdict drift")
    Term.(const replay $ corpus_dir_t)

let triage dir =
  with_corpus dir (fun corpus ->
      let rows = Corpus.triage corpus in
      Printf.printf "%5s  %-6s %-9s %5s  %5s %5s  %-24s %s\n" "count" "system"
        "verdict" "nodes" "first" "last" "case" "dedup-key / bugs";
      List.iter
        (fun (r : Corpus.triage_row) ->
          Printf.printf "%5d  %-6s %-9s %5d  %5d %5d  %-24s %s%s\n" r.tr_count
            r.tr_system r.tr_verdict r.tr_nodes r.tr_first r.tr_last
            r.tr_case_id r.tr_key
            (match r.tr_bugs with
            | [] -> ""
            | bugs -> "  [" ^ String.concat ", " bugs ^ "]"))
        rows;
      Printf.printf "%d distinct failure(s), %d case(s) on disk\n"
        (List.length rows) (Corpus.size corpus);
      0)

let triage_cmd =
  Cmd.v
    (Cmd.info "triage"
       ~doc:"Summarize a bug-report corpus: dedup-key, hit count, system")
    Term.(const triage $ corpus_dir_t)

(* ---- cov ---------------------------------------------------------- *)

let cov budget_s tests jobs seed telemetry journal_dir progress no_cache
    no_plan no_batch cohort_size no_prescreen =
  apply_no_cache no_cache;
  apply_no_plan no_plan;
  apply_engine no_batch cohort_size;
  apply_no_prescreen no_prescreen;
  Faults.deactivate_all ();
  let write_failed = ref false in
  let generators =
    [
      ("NNSmith", fun s -> D.Generators.nnsmith ~seed:s ());
      ("GraphFuzzer", fun s -> D.Generators.graphfuzzer ~seed:s ());
      ("LEMON", fun s -> D.Generators.lemon ~seed:s ());
    ]
  in
  with_campaign_lock ~dir:journal_dir @@ fun () ->
  with_journal ~journal_dir ~progress (fun journal ->
      List.iter
        (fun (system : D.Systems.t) ->
          List.iter
            (fun (name, gen_of_seed) ->
              (* each campaign resets telemetry: one JSONL line per campaign *)
              let fuzzer, n_tests, final =
                if jobs = 1 && tests = None then
                  let r =
                    D.Campaign.coverage ?journal
                      ~budget_ms:(budget_s *. 1000.) ~system
                      (gen_of_seed seed)
                  in
                  (r.fuzzer, r.tests, r.final)
                else
                  let r =
                    D.Pfuzz.coverage ~jobs ?journal ~generator:name ~system
                      ~root_seed:seed
                      ~budget:(budget_of ~budget_s tests)
                      ~gen_of_seed ()
                  in
                  (name, r.r_stats.st_tests, r.r_coverage)
              in
              Printf.printf
                "%-6s %-12s tests=%-5d total=%-5d pass-only=%-5d\n%!"
                system.s_name fuzzer n_tests (Cov.count final)
                (Cov.count_pass final);
              match telemetry with
              | Some path -> (
                  try Tel.append_jsonl path (Tel.snapshot ())
                  with Sys_error m ->
                    if not !write_failed then
                      Printf.eprintf "cannot write telemetry: %s\n%!" m;
                    write_failed := true)
              | None -> ())
            generators)
        D.Systems.open_source;
      (match telemetry with
      | Some path when not !write_failed ->
          Printf.printf "telemetry appended to %s\n" path
      | _ -> ());
      if !write_failed then 1 else 0)

let cov_cmd =
  Cmd.v
    (Cmd.info "cov" ~doc:"Coverage comparison of all fuzzers on all systems")
    Term.(
      const cov $ budget_t $ tests_t $ jobs_t $ seed_t $ telemetry_t
      $ journal_t $ progress_t $ no_cache_t $ no_plan_t $ no_batch_t
      $ cohort_size_t $ no_prescreen_t)

(* ---- hunt --------------------------------------------------------- *)

let hunt budget_s tests jobs seed telemetry report_dir journal_dir progress
    no_cache no_plan no_batch cohort_size no_prescreen =
  apply_no_cache no_cache;
  apply_no_plan no_plan;
  apply_engine no_batch cohort_size;
  apply_no_prescreen no_prescreen;
  Tel.reset ();
  let report_dir = default_report_dir report_dir journal_dir in
  with_campaign_lock ~dir:(first_some journal_dir report_dir) @@ fun () ->
  with_journal ~journal_dir ~progress (fun journal ->
      let r =
        D.Pfuzz.hunt ~jobs ?journal ?report_dir ~root_seed:seed
          ~budget:(budget_of ~budget_s tests)
          ()
      in
      Printf.printf "seeded-bug hunt: ";
      print_parallel_result ~triggered:true r;
      let tbl = Hashtbl.create 32 in
      List.iter (fun (id, n) -> Hashtbl.replace tbl id n) r.r_triggered;
      List.iter
        (fun (sys, trans, conv, uncls, crash, sem) ->
          Printf.printf
            "  %-9s transformation=%d conversion=%d unclassified=%d \
             (crash=%d, semantic=%d)\n"
            sys trans conv uncls crash sem)
        (D.Bughunt.distribution tbl);
      print_corpus_line report_dir r;
      write_telemetry telemetry)

let hunt_cmd =
  Cmd.v
    (Cmd.info "hunt"
       ~doc:"Hunt the seeded defect catalogue across all systems")
    Term.(
      const hunt $ budget_t $ tests_t $ jobs_t $ seed_t $ telemetry_t
      $ report_dir_t $ journal_t $ progress_t $ no_cache_t $ no_plan_t
      $ no_batch_t $ cohort_size_t $ no_prescreen_t)

(* ---- fleet -------------------------------------------------------- *)

let fleet dir tests procs hunt bugs seed system_names resume max_nodes
    hb_timeout_s checkpoint_every dashboard_every_s progress no_cache no_plan
    no_batch cohort_size no_prescreen =
  apply_no_cache no_cache;
  apply_no_plan no_plan;
  apply_engine no_batch cohort_size;
  apply_no_prescreen no_prescreen;
  Tel.reset ();
  let systems =
    match system_names with
    | [] -> Ok D.Systems.all
    | names ->
        List.fold_left
          (fun acc n ->
            match (acc, system_of_name n) with
            | Ok ss, Some s -> Ok (ss @ [ s ])
            | Ok _, None -> Error n
            | (Error _ as e), _ -> e)
          (Ok []) names
  in
  match systems with
  | Error n ->
      Printf.eprintf "unknown system %s (oxrt | lotus | trt)\n" n;
      1
  | Ok systems -> (
      let faults =
        if hunt || bugs then
          List.map (fun (b : Faults.bug) -> b.b_id) Faults.catalogue
        else []
      in
      let cfg =
        {
          (Fleet.default_config ~dir ~tests) with
          Fleet.fc_kind = (if hunt then Fleet.Hunt else Fleet.Fuzz);
          fc_systems = systems;
          fc_faults = faults;
          fc_root_seed = seed;
          fc_shards = max 1 procs;
          fc_max_nodes = max_nodes;
          fc_heartbeat_timeout_ms = hb_timeout_s *. 1000.;
          fc_checkpoint_every = checkpoint_every;
          fc_dashboard_every_ms =
            (match dashboard_every_s with
            | Some s -> s *. 1000.
            | None -> 0.);
          fc_progress = progress;
        }
      in
      match Fleet.run ~resume cfg with
      | Error m ->
          Printf.eprintf "%s\n" m;
          1
      | Ok s ->
          Printf.printf
            "fleet %s: %d shard(s), %d/%d test(s) applied (%d this session, \
             %.1f tests/s)\n"
            dir s.Fleet.fs_shards s.fs_tests tests s.fs_session_tests
            (float_of_int s.fs_session_tests
            /. Float.max 1e-6 (s.fs_elapsed_ms /. 1000.));
          List.iter (fun (k, n) -> Printf.printf "  %-12s %d\n" k n)
            s.fs_verdicts;
          Printf.printf "unique failures: %d\n"
            (List.length s.fs_failure_keys);
          List.iter (fun (k, n) -> Printf.printf "  %4dx %s\n" n k)
            s.fs_crashes;
          Printf.printf
            "corpus: %d new case(s), %d duplicate(s) suppressed\n" s.fs_saved
            s.fs_dups;
          if s.fs_worker_crashes > 0 then
            Printf.printf
              "worker crashes: %d (filed in the corpus; %d restart(s))\n"
              s.fs_worker_crashes s.fs_restarts;
          Printf.printf "coverage: %d site(s), %d pass-only\n" s.fs_cov_total
            s.fs_cov_pass;
          if s.fs_complete then 0
          else begin
            Printf.printf
              "campaign interrupted — continue with `nnsmith fleet %s \
               --resume`\n"
              dir;
            1
          end)

let fleet_dir_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR"
        ~doc:
          "Campaign directory: corpus, journal.jsonl, checkpoint.json \
           (created if missing).")

let fleet_tests_t =
  Arg.(
    value
    & opt int 100
    & info [ "tests" ] ~docv:"N"
        ~doc:
          "Global test budget (indices 0..N-1; identical failure set for \
           any $(b,--procs)).")

let procs_t =
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "procs"; "p" ] ~docv:"N"
        ~doc:"Worker OS processes (shards of the index space).")

let fleet_hunt_t =
  Arg.(
    value
    & flag
    & info [ "hunt" ]
        ~doc:"Hunt the seeded defect catalogue instead of plain fuzzing.")

let fleet_systems_t =
  Arg.(
    value
    & opt_all string []
    & info [ "system" ] ~docv:"SYS"
        ~doc:"oxrt | lotus | trt (repeatable; default: all three).")

let resume_t =
  Arg.(
    value
    & flag
    & info [ "resume" ]
        ~doc:
          "Continue from $(i,DIR)'s checkpoint after a kill; the finished \
           campaign is byte-identical to an uninterrupted run.")

let max_nodes_t =
  Arg.(
    value
    & opt int 10
    & info [ "max-nodes" ] ~docv:"N" ~doc:"Operator nodes per model.")

let hb_timeout_t =
  Arg.(
    value
    & opt float 30.
    & info [ "heartbeat-timeout" ] ~docv:"SECS"
        ~doc:
          "Kill and restart a worker that has not framed an outcome for \
           this long.")

let checkpoint_every_t =
  Arg.(
    value
    & opt int 25
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Applied tests between checkpoints.")

let dashboard_every_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "dashboard-every" ] ~docv:"SECS"
        ~doc:
          "Regenerate $(i,DIR)/dashboard.html this often while the \
           campaign runs (with a matching meta-refresh tag).")

let fleet_cmd =
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Crash-tolerant multi-process campaign: shard the index-pure \
          test space across worker processes with a checkpointed, \
          resumable work queue")
    Term.(
      const fleet $ fleet_dir_t $ fleet_tests_t $ procs_t $ fleet_hunt_t
      $ bugs_t $ seed_t $ fleet_systems_t $ resume_t $ max_nodes_t
      $ hb_timeout_t $ checkpoint_every_t $ dashboard_every_t $ progress_t
      $ no_cache_t $ no_plan_t $ no_batch_t $ cohort_size_t $ no_prescreen_t)

(* ---- journal tail ------------------------------------------------- *)

let journal_tail dir n follow interval_s =
  let path =
    if Filename.check_suffix dir ".jsonl" then dir else Journal.in_dir dir
  in
  let print_from skip (r : Journal.read_result) =
    List.iteri
      (fun i ev ->
        if i >= skip then print_endline (Journal.summary_line ev))
      r.Journal.events;
    List.length r.Journal.events
  in
  match Journal.read_file path with
  | Error m ->
      Printf.eprintf "cannot read %s: %s\n" path m;
      1
  | Ok r ->
      let len = List.length r.Journal.events in
      let printed = ref (print_from (max 0 (len - n)) r) in
      if r.Journal.torn_tail then
        Printf.eprintf "note: final line torn (writer killed mid-write)\n";
      flush stdout;
      if not follow then 0
      else begin
        (* poll the file; the torn-tail-tolerant reader means a live
           appender can never make us error or print a partial event *)
        while true do
          Unix.sleepf interval_s;
          (match Journal.read_file path with
          | Error _ -> ()
          | Ok r ->
              printed := print_from !printed r;
              flush stdout)
        done;
        0
      end

let tail_lines_t =
  Arg.(
    value
    & opt int 10
    & info [ "n"; "lines" ] ~docv:"N" ~doc:"Print the last $(docv) events.")

let follow_t =
  Arg.(
    value
    & flag
    & info [ "follow"; "f" ]
        ~doc:"Keep polling for new events (like `tail -f`).")

let tail_interval_t =
  Arg.(
    value
    & opt float 0.5
    & info [ "interval" ] ~docv:"SECS"
        ~doc:"Poll interval with $(b,--follow).")

let journal_tail_cmd =
  Cmd.v
    (Cmd.info "tail"
       ~doc:"Print the last journal events as one-line summaries")
    Term.(
      const journal_tail $ fleet_dir_t $ tail_lines_t $ follow_t
      $ tail_interval_t)

let journal_cmd =
  Cmd.group
    (Cmd.info "journal" ~doc:"Inspect a campaign's event journal")
    [ journal_tail_cmd ]

(* ---- stats -------------------------------------------------------- *)

let stats file =
  (* same reader as the dashboard, so the two can never disagree *)
  match Tel.read_jsonl file with
  | Error m ->
      Printf.eprintf "cannot open %s: %s\n" file m;
      1
  | Ok { Tel.jr_snapshots; jr_errors } ->
      List.iteri
        (fun i s ->
          Printf.printf "-- snapshot %d --\n%s\n" (i + 1) (Tel.render_table s))
        jr_snapshots;
      List.iter
        (fun (line, m) ->
          Printf.eprintf "line %d: malformed telemetry: %s\n" line m)
        jr_errors;
      if jr_snapshots = [] then begin
        Printf.eprintf "%s contains no telemetry snapshots\n" file;
        1
      end
      else if jr_errors <> [] then 1
      else 0

let stats_file_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"JSONL telemetry report to render.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Render a JSONL telemetry report as human-readable tables")
    Term.(const stats $ stats_file_t)

(* ---- dashboard ---------------------------------------------------- *)

let dashboard dir bench_dir out refresh =
  let html = Dashboard.of_dir ~bench_dir ?refresh_secs:refresh dir in
  let out =
    match out with Some p -> p | None -> Filename.concat dir "dashboard.html"
  in
  match
    let oc = open_out out in
    output_string oc html;
    close_out oc
  with
  | () ->
      Printf.printf "dashboard written to %s (%d bytes)\n" out
        (String.length html);
      0
  | exception Sys_error m ->
      Printf.eprintf "cannot write dashboard: %s\n" m;
      1

let dashboard_dir_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR"
        ~doc:
          "Campaign directory (journal.jsonl, index.jsonl, \
           telemetry.jsonl — all optional).")

let bench_dir_t =
  Arg.(
    value
    & opt string "."
    & info [ "bench-dir" ] ~docv:"DIR"
        ~doc:
          "Where to look for bench/history.jsonl and BENCH_*.json \
           (default: the current directory).")

let dashboard_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the HTML here instead of $(i,DIR)/dashboard.html.")

let dashboard_refresh_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "refresh" ] ~docv:"SECS"
        ~doc:
          "Embed a meta-refresh tag so a browser left open on the page \
           re-reads it every $(docv) seconds — pairs with regenerating it \
           in a loop (or `nnsmith fleet --dashboard-every`).")

let dashboard_cmd =
  Cmd.v
    (Cmd.info "dashboard"
       ~doc:
         "Render a campaign directory as one self-contained static HTML \
          page (inline CSS + SVG, no JavaScript)")
    Term.(
      const dashboard $ dashboard_dir_t $ bench_dir_t $ dashboard_out_t
      $ dashboard_refresh_t)

(* ---- reduce ------------------------------------------------------- *)

let reduce bug_id budget_s seed out_path =
  match Faults.find bug_id with
  | None ->
      Printf.eprintf "unknown bug id %s (see `nnsmith bugs`)\n" bug_id;
      1
  | Some bug -> (
      let system =
        match bug.system with
        | "OxRT" | "Exporter" -> D.Systems.oxrt
        | "Lotus" -> D.Systems.lotus
        | "TRT" -> D.Systems.trt
        | _ -> D.Systems.oxrt
      in
      let rng = Random.State.make [| seed |] in
      let predicate = D.Reduce.still_triggers system ~bug_id rng in
      (* fuzz until a model triggers the bug *)
      let gen = D.Generators.nnsmith ~seed () in
      let start = Tel.now_ms () in
      let rec find () =
        if Tel.now_ms () -. start > budget_s *. 1000. then None
        else
          match gen.next () with
          | Some g when predicate g -> Some g
          | _ -> find ()
      in
      match find () with
      | None ->
          Printf.printf "no model triggered %s within %.0f s\n" bug_id budget_s;
          1
      | Some g ->
          Printf.printf "found a %d-node reproducer; reducing...\n%!"
            (Graph.size g);
          let reduced, stats = D.Reduce.minimize ~predicate g in
          Printf.printf
            "reduced %d -> %d nodes (%d/%d mutations accepted):\n%s\n"
            stats.initial_size stats.final_size stats.accepted stats.attempts
            (Graph.to_string reduced);
          (match out_path with
          | Some path ->
              Nnsmith_ir.Serial.save path reduced;
              Printf.printf "saved to %s\n" path
          | None -> ());
          0)

let bug_id_t =
  Arg.(
    required
    & opt (some string) None
    & info [ "bug" ] ~docv:"ID" ~doc:"Seeded bug id (see `nnsmith bugs`).")

let out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Save the reduced model here.")

let reduce_cmd =
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Find a model triggering a seeded bug and minimize it")
    Term.(const reduce $ bug_id_t $ budget_t $ seed_t $ out_t)

(* ---- ops / bugs --------------------------------------------------- *)

let ops () =
  List.iter print_endline (Nnsmith_ops.Registry.names ());
  0

let ops_cmd =
  Cmd.v (Cmd.info "ops" ~doc:"List registered operator specifications")
    Term.(const ops $ const ())

let bugs () =
  List.iter
    (fun (b : Faults.bug) ->
      Printf.printf "%-36s %-9s %-13s %-8s %s\n" b.b_id b.system
        (Faults.category_name b.category)
        (Faults.effect_name b.effect)
        b.description)
    Faults.catalogue;
  0

let bugs_cmd =
  Cmd.v (Cmd.info "bugs" ~doc:"List the seeded bug catalogue")
    Term.(const bugs $ const ())

let () =
  (* Hidden worker mode: the fleet supervisor respawns this very binary
     with this argv marker; the worker config rides the environment. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "fleet-worker" then
    Fleet.worker_main ();
  let info =
    Cmd.info "nnsmith" ~version:"1.0.0"
      ~doc:"Generate diverse and valid test cases for deep-learning compilers"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd;
            fuzz_cmd;
            replay_cmd;
            triage_cmd;
            cov_cmd;
            hunt_cmd;
            fleet_cmd;
            journal_cmd;
            stats_cmd;
            dashboard_cmd;
            reduce_cmd;
            ops_cmd;
            bugs_cmd;
          ]))
